package fortran

import (
	"strings"
	"testing"
)

func benchSource() string {
	var b strings.Builder
	b.WriteString("module bench\n  use other, only: x => y\n  real :: q(:), w(:)\ncontains\n")
	for i := 0; i < 50; i++ {
		b.WriteString("  subroutine sub")
		b.WriteString(strings.Repeat("x", i%3+1))
		b.WriteString("()\n    real :: t(:)\n")
		b.WriteString("    t = q * 2.0 + max(w, 0.5) * shift(q, 1)\n")
		b.WriteString("    if (t(1) > 0.0) then\n      w = t ** 2.0\n    end if\n")
		b.WriteString("  end subroutine\n")
	}
	b.WriteString("end module\n")
	return b.String()
}

func BenchmarkLexer(b *testing.B) {
	src := benchSource()
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := NewLexer(src).Tokens(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseFile(b *testing.B) {
	src := benchSource()
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := ParseFile(src); err != nil {
			b.Fatal(err)
		}
	}
}
