package search

import (
	"encoding/json"
	"fmt"
	"strings"

	"github.com/climate-rca/rca/internal/experiments"
)

// Request is the wire-level search description: everything Options
// carries except the session-local knobs (parallelism, progress hook),
// which the executing side supplies.
type Request struct {
	// Objective defaults to minflip when empty.
	Objective Objective
	// Threshold is the minflip flip threshold; zero defaults at Run.
	Threshold float64
	// MaxSubset caps subset size; zero defaults at Run.
	MaxSubset int
	// Base is the scenario candidates are layered onto (nil = clean).
	Base experiments.Scenario
	// Pool is the candidate injections.
	Pool []experiments.Injection
}

// Options converts the request into run options.
func (r *Request) Options() Options {
	return Options{
		Base:      r.Base,
		Pool:      r.Pool,
		Objective: r.Objective,
		Threshold: r.Threshold,
		MaxSubset: r.MaxSubset,
	}
}

// requestJSON is the wire format:
//
//	{
//	  "objective": "minflip",
//	  "threshold": 0.5,
//	  "maxsubset": 3,
//	  "base": {"name": "...", "inject": [...]},
//	  "pool": ["param:wsub=2.0", {"module": "m", ...}]
//	}
//
// base is a full scenario document (ScenarioFromJSON); pool entries
// use the same injection entry grammar as a scenario's inject list —
// grammar strings or structured patch objects.
type requestJSON struct {
	Objective string            `json:"objective,omitempty"`
	Threshold float64           `json:"threshold,omitempty"`
	MaxSubset int               `json:"maxsubset,omitempty"`
	Base      json.RawMessage   `json:"base,omitempty"`
	Pool      []json.RawMessage `json:"pool"`
}

// RequestFromJSON parses the wire format. Unknown top-level fields are
// rejected; defaults (objective, threshold, subset cap) are left to
// Run so parsing stays lossless for round-trips.
func RequestFromJSON(data []byte) (*Request, error) {
	var def requestJSON
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&def); err != nil {
		return nil, fmt.Errorf("search: request JSON: %w", err)
	}
	obj, err := ParseObjective(def.Objective)
	if err != nil {
		return nil, err
	}
	if len(def.Pool) == 0 {
		return nil, fmt.Errorf("search: request pool is empty")
	}
	if def.Objective == "" {
		obj = ""
	}
	req := &Request{Objective: obj, Threshold: def.Threshold, MaxSubset: def.MaxSubset}
	if len(def.Base) > 0 && string(def.Base) != "null" {
		base, err := experiments.ScenarioFromJSON(def.Base)
		if err != nil {
			return nil, fmt.Errorf("search: request base: %w", err)
		}
		req.Base = base
	}
	for i, raw := range def.Pool {
		inj, err := experiments.InjectionFromWire(raw)
		if err != nil {
			return nil, fmt.Errorf("search: request pool[%d]: %w", i, err)
		}
		req.Pool = append(req.Pool, inj)
	}
	return req, nil
}

// RequestToJSON serializes a request to the wire format, the inverse
// of RequestFromJSON.
func RequestToJSON(req *Request) ([]byte, error) {
	def := requestJSON{
		Objective: string(req.Objective),
		Threshold: req.Threshold,
		MaxSubset: req.MaxSubset,
		Pool:      []json.RawMessage{},
	}
	if req.Base != nil {
		base, err := experiments.ScenarioToJSON(req.Base)
		if err != nil {
			return nil, fmt.Errorf("search: request base: %w", err)
		}
		def.Base = base
	}
	for i, inj := range req.Pool {
		entry, err := experiments.InjectionToWire(inj)
		if err != nil {
			return nil, fmt.Errorf("search: request pool[%d]: %w", i, err)
		}
		def.Pool = append(def.Pool, entry)
	}
	return json.MarshalIndent(def, "", "  ")
}
