package search

import (
	"context"
	"errors"

	"github.com/climate-rca/rca/internal/artifact"
	"github.com/climate-rca/rca/internal/binenc"
)

// verdictCodecVersion versions the durable verdict blob (a scenario's
// UF-ECT failure rate keyed by build fingerprint + run sizes). Bump on
// layout change: a mismatched version on disk decodes as an error and
// the caller recomputes.
const verdictCodecVersion = 1

func encodeVerdict(rate float64) []byte {
	w := binenc.NewWriter(16)
	w.U32(verdictCodecVersion)
	w.F64(rate)
	return w.Bytes()
}

func decodeVerdict(data []byte) (float64, error) {
	r := binenc.NewReader(data)
	if v := r.U32(); v != verdictCodecVersion {
		return 0, errors.New("search: verdict codec version mismatch")
	}
	rate := r.F64()
	if err := r.Done(); err != nil {
		return 0, err
	}
	return rate, nil
}

// incumbentCodecVersion versions the shared incumbent blob.
const incumbentCodecVersion = 1

func encodeIncumbent(n *node) []byte {
	w := binenc.NewWriter(64)
	w.U32(incumbentCodecVersion)
	w.Int(n.wave)
	w.F64(n.rate)
	w.Len(len(n.ids))
	for _, id := range n.ids {
		w.String(id)
	}
	return w.Bytes()
}

func decodeIncumbent(data []byte) (*node, error) {
	r := binenc.NewReader(data)
	if v := r.U32(); v != incumbentCodecVersion {
		return nil, errors.New("search: incumbent codec version mismatch")
	}
	n := &node{wave: r.Int(), rate: r.F64()}
	count := r.Len()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if count < 0 || count > MaxPool {
		return nil, errors.New("search: incumbent id count out of range")
	}
	n.ids = make([]string, 0, count)
	for i := 0; i < count; i++ {
		n.ids = append(n.ids, r.String())
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return n, nil
}

// publishIncumbent shares the current incumbent through the artifact
// store so concurrent workers running the same search prune against
// the global best. The blob is keyed by the search fingerprint and
// replaced read-modify-write under a store lock, only ever with a
// strictly better solution.
func (e *engine) publishIncumbent(ctx context.Context) {
	if e.store == nil || e.best == nil || e.best == e.published {
		return
	}
	unlock, err := e.store.Lock(ctx, "incumbent-"+e.fingerprint[:16])
	if err != nil {
		return // sharing is best-effort; the local search is unaffected
	}
	defer unlock()
	if data, ok := e.store.Get(artifact.ClassIncumbent, e.fingerprint); ok {
		if cur, derr := decodeIncumbent(data); derr == nil && !e.better(e.best, cur) {
			e.published = e.best
			return
		}
	}
	if e.store.Put(artifact.ClassIncumbent, e.fingerprint, encodeIncumbent(e.best)) == nil {
		e.published = e.best
	}
}

// adoptIncumbent imports a peer's published incumbent at a wave
// boundary. Adoption is gated on the blob's discovery wave being
// strictly earlier than the wave about to start: a peer running the
// identical deterministic search publishes exactly what this run has
// already found by then, so for identical searches the gate makes
// adoption a no-op and the incumbent trace stays bit-identical with or
// without peers. Only a search that is genuinely ahead (a resumed or
// earlier-started run) can inject a better bound.
func (e *engine) adoptIncumbent(wave int) {
	if e.store == nil {
		return
	}
	data, ok := e.store.Get(artifact.ClassIncumbent, e.fingerprint)
	if !ok {
		return
	}
	peer, err := decodeIncumbent(data)
	if err != nil || peer.wave >= wave || !e.better(peer, e.best) {
		return
	}
	e.best = peer
	e.incumbents = append(e.incumbents, IncumbentUpdate{
		Wave:   peer.wave,
		By:     "peer",
		Subset: Subset{IDs: peer.ids, Rate: peer.rate},
	})
	e.emit(Event{Kind: EventIncumbent, Wave: peer.wave, IDs: peer.ids, Rate: peer.rate, By: "peer"})
}
