// Package search explores the injection space with branch-and-bound:
// given a base scenario, a pool of candidate injections, and an
// objective, it walks ordered injection subsets (index tuples over the
// priority-sorted pool, children extending a node with strictly larger
// indices so every subset is visited exactly once), pruning subtrees
// whose optimistic bound cannot beat the incumbent.
//
// The search is deterministic at every parallelism level: each wave's
// membership is fixed before any node in it is evaluated, evaluations
// land in indexed slots, and results are then processed sequentially
// in canonical order. Node evaluations are keyed by the session's
// layered build fingerprints, so an attached artifact store makes
// revisits free across processes and lets concurrent workers share one
// global incumbent.
package search

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/climate-rca/rca/internal/artifact"
	"github.com/climate-rca/rca/internal/experiments"
)

// Objective selects what the search optimizes.
type Objective string

const (
	// ObjectiveMinFlip finds the smallest candidate subset whose
	// composed scenario fails UF-ECT at least at the threshold rate.
	// Ties break toward higher failure rate, then canonical order.
	ObjectiveMinFlip Objective = "minflip"
	// ObjectiveMaxDelta finds the subset (at most MaxSubset large)
	// with the highest composed failure rate — the largest
	// verdict-confidence delta over the base scenario.
	ObjectiveMaxDelta Objective = "maxdelta"
	// ObjectiveRank ranks the candidates alone by failure-rate delta
	// over the base — the most-fragile-injection view. Probes only; no
	// tree search.
	ObjectiveRank Objective = "rank"
)

// ParseObjective maps a wire/CLI name to an Objective.
func ParseObjective(s string) (Objective, error) {
	switch Objective(s) {
	case ObjectiveMinFlip, ObjectiveMaxDelta, ObjectiveRank:
		return Objective(s), nil
	case "":
		return ObjectiveMinFlip, nil
	}
	return "", fmt.Errorf("search: unknown objective %q (want minflip, maxdelta or rank)", s)
}

// MaxPool bounds the candidate pool. 32 keeps the exhaustive subset
// count (the pruning-ratio denominator) inside int64.
const MaxPool = 32

// DefaultThreshold is the minflip verdict threshold when the request
// leaves it zero: the failure rate at which an investigation's UF-ECT
// verdict is read as "distinguishable from the control ensemble".
const DefaultThreshold = 0.5

// Options configure one search run.
type Options struct {
	// Base is the scenario every candidate subset is layered onto.
	// Nil means the clean baseline.
	Base experiments.Scenario
	// Pool is the candidate injections (at most MaxPool, unique IDs).
	Pool []experiments.Injection
	// Objective defaults to ObjectiveMinFlip.
	Objective Objective
	// Threshold is the minflip flip threshold in (0,1]; zero means
	// DefaultThreshold.
	Threshold float64
	// MaxSubset caps subset size; zero means the pool size for
	// minflip/rank and min(3, pool size) for maxdelta.
	MaxSubset int
	// Parallelism bounds concurrent node evaluations; zero means
	// GOMAXPROCS. The result is identical at every value.
	Parallelism int
	// Progress, when set, receives events. Events are emitted
	// sequentially from the canonical processing order, so the stream
	// is itself deterministic at every parallelism level.
	Progress func(Event)
}

// EventKind names one progress event class.
type EventKind string

const (
	// EventWave opens wave k (probes are wave 1).
	EventWave EventKind = "wave"
	// EventExpanded reports one node evaluated.
	EventExpanded EventKind = "expanded"
	// EventPruned reports one child subtree cut by a bound.
	EventPruned EventKind = "pruned"
	// EventIncumbent reports a new best-known solution.
	EventIncumbent EventKind = "incumbent"
)

// Event is one search progress event.
type Event struct {
	Kind EventKind
	// Wave is the subset size being explored (0 = warm start).
	Wave int
	// IDs is the node's injection IDs in canonical order (nil for
	// wave events).
	IDs []string
	// Rate is the node's composed failure rate (incumbent/expanded).
	Rate float64
	// By labels incumbent provenance: probe, greedy, search or peer.
	By string
}

// Candidate is one pool entry with its single-injection probe result.
type Candidate struct {
	ID       string  `json:"id"`
	Rate     float64 `json:"rate"`
	Delta    float64 `json:"delta"`
	Feasible bool    `json:"feasible"`
}

// Subset is one evaluated injection subset.
type Subset struct {
	// IDs lists the member injections in canonical (priority) order.
	IDs  []string `json:"ids"`
	Rate float64  `json:"rate"`
}

// IncumbentUpdate is one entry of the incumbent trace.
type IncumbentUpdate struct {
	// Wave is the subset size under exploration at discovery time
	// (0 for the greedy warm start's base probe adoption).
	Wave int `json:"wave"`
	// By is the discovery mechanism: probe, greedy, search or peer.
	By     string `json:"by"`
	Subset Subset `json:"subset"`
}

// Stats counts the search's work. All counters are deterministic for a
// given request, independent of parallelism and store warmth.
type Stats struct {
	// Evaluations counts distinct subsets whose failure rate the
	// search requested (including the base scenario).
	Evaluations int `json:"evaluations"`
	// Expanded counts node visits in the tree (probes, greedy prefix
	// steps and wave nodes).
	Expanded int `json:"expanded"`
	// Pruned counts child subtrees cut by bound or incumbent tests.
	Pruned int `json:"pruned"`
	// Infeasible counts visited subsets whose injections conflict.
	Infeasible int `json:"infeasible"`
	// Waves is the largest subset size explored.
	Waves int `json:"waves"`
	// Exhaustive is the subset count a full enumeration up to
	// MaxSubset would evaluate — the pruning-ratio denominator.
	Exhaustive int64 `json:"exhaustive"`
}

// Result is one finished search.
type Result struct {
	Objective Objective `json:"objective"`
	Threshold float64   `json:"threshold,omitempty"`
	MaxSubset int       `json:"maxsubset"`
	BaseName  string    `json:"base"`
	BaseRate  float64   `json:"baseRate"`
	// Candidates lists the pool in priority order (probe delta
	// descending, ID ascending), infeasible entries last.
	Candidates []Candidate `json:"candidates"`
	// Best is the winning subset, nil when no subset satisfies the
	// objective (minflip with nothing reaching the threshold).
	Best *Subset `json:"best,omitempty"`
	// Incumbents is the incumbent trace in discovery order.
	Incumbents []IncumbentUpdate `json:"incumbents,omitempty"`
	Stats      Stats             `json:"stats"`
}

// Run executes one branch-and-bound search over the session.
func Run(ctx context.Context, s *experiments.Session, opts Options) (*Result, error) {
	if s == nil {
		return nil, errors.New("search: nil session")
	}
	obj, err := ParseObjective(string(opts.Objective))
	if err != nil {
		return nil, err
	}
	if len(opts.Pool) == 0 {
		return nil, errors.New("search: empty candidate pool")
	}
	if len(opts.Pool) > MaxPool {
		return nil, fmt.Errorf("search: pool has %d candidates (max %d)", len(opts.Pool), MaxPool)
	}
	seen := make(map[string]bool, len(opts.Pool))
	for _, inj := range opts.Pool {
		if inj == nil {
			return nil, errors.New("search: nil injection in pool")
		}
		if seen[inj.ID()] {
			return nil, fmt.Errorf("search: duplicate pool injection %s", inj.ID())
		}
		seen[inj.ID()] = true
	}
	thr := opts.Threshold
	if thr == 0 {
		thr = DefaultThreshold
	}
	if thr < 0 || thr > 1 {
		return nil, fmt.Errorf("search: threshold %v outside (0,1]", opts.Threshold)
	}
	base := opts.Base
	if base == nil {
		base = experiments.NewScenario("base", experiments.ScenarioOptions{})
	}
	keys, err := s.Keys(base)
	if err != nil {
		return nil, fmt.Errorf("search: base scenario: %w", err)
	}
	maxSub := opts.MaxSubset
	if maxSub < 0 {
		return nil, fmt.Errorf("search: negative maxsubset %d", maxSub)
	}
	if maxSub == 0 {
		maxSub = len(opts.Pool)
		if obj == ObjectiveMaxDelta && maxSub > 3 {
			maxSub = 3
		}
	}
	if maxSub > len(opts.Pool) {
		maxSub = len(opts.Pool)
	}
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	ens, runs := s.Sizes()
	e := &engine{
		session:   s,
		store:     s.ArtifactStore(),
		base:      base,
		baseKeys:  keys,
		pool:      append([]experiments.Injection(nil), opts.Pool...),
		objective: obj,
		threshold: thr,
		maxSubset: maxSub,
		par:       par,
		progress:  opts.Progress,
		runKey:    fmt.Sprintf("e=%d|r=%d", ens, runs),
		visited:   make(map[string]bool),
	}
	e.fingerprint = e.searchFingerprint()
	return e.run(ctx)
}

// node is one evaluated subset. subset holds priority-order pool
// indices (strictly increasing); it is nil for incumbents adopted from
// a peer, whose identity lives only in ids.
type node struct {
	subset []int
	ids    []string
	rate   float64
	// wave records the subset size under exploration at discovery
	// time, gating distributed adoption (see adoptIncumbent).
	wave int
}

type engine struct {
	session   *experiments.Session
	store     *artifact.Store
	base      experiments.Scenario
	baseKeys  experiments.Keys
	pool      []experiments.Injection // request order until reorder()
	objective Objective
	threshold float64
	maxSubset int
	par       int
	progress  func(Event)
	runKey    string
	// fingerprint identifies the search request across processes; the
	// shared incumbent blob is keyed by it.
	fingerprint string

	baseRate float64
	// order maps priority index -> original pool index; deltas and all
	// subsets below are in priority-index space over feasible
	// candidates only (a conflicting singleton conflicts in every
	// superset, so infeasible singletons leave the tree entirely).
	order  []int
	deltas []float64
	rates  []float64
	// topExtra[j][d] is the sum of the d largest positive deltas among
	// priority indices >= j — the optimistic headroom of extending a
	// node whose next extension index is j.
	topExtra [][]float64

	visited    map[string]bool
	stats      Stats
	incumbents []IncumbentUpdate
	best       *node
	published  *node
}

func (e *engine) emit(ev Event) {
	if e.progress != nil {
		e.progress(ev)
	}
}

func subsetKey(subset []int) string {
	var b strings.Builder
	for i, v := range subset {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

func (e *engine) searchFingerprint() string {
	ids := make([]string, len(e.pool))
	for i, inj := range e.pool {
		ids[i] = inj.ID()
	}
	sort.Strings(ids)
	var b strings.Builder
	fmt.Fprintf(&b, "search1|%s|thr=%g|max=%d|%s|%s|", e.objective, e.threshold, e.maxSubset, e.runKey, e.baseKeys.Scenario)
	for _, id := range ids {
		b.WriteString(id)
		b.WriteByte('\n')
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// ids returns the subset's injection IDs in canonical order.
func (e *engine) idsOf(subset []int) []string {
	out := make([]string, len(subset))
	for i, j := range subset {
		out[i] = e.pool[e.order[j]].ID()
	}
	return out
}

// scenarioFor composes the base scenario with the subset's injections.
func (e *engine) scenarioFor(subset []int) experiments.Scenario {
	injs := append([]experiments.Injection(nil), e.base.Injections()...)
	name := e.base.Name()
	for _, j := range subset {
		inj := e.pool[e.order[j]]
		injs = append(injs, inj)
		name += "+" + inj.ID()
	}
	return experiments.NewScenario(name, e.base.Options(), injs...)
}

// rawScenarioFor is scenarioFor before reorder(), indexing the pool
// directly; the probe phase uses it.
func (e *engine) rawScenarioFor(i int) experiments.Scenario {
	inj := e.pool[i]
	injs := append([]experiments.Injection(nil), e.base.Injections()...)
	injs = append(injs, inj)
	return experiments.NewScenario(e.base.Name()+"+"+inj.ID(), e.base.Options(), injs...)
}

type eval struct {
	rate     float64
	feasible bool
}

// evalScenario measures one composed scenario's failure rate,
// reporting feasible=false for conflicting injection sets. With a
// store attached, the verdict travels through GetOrBuild keyed by the
// build fingerprint plus the session's run sizes, so any process
// sharing the store computes it at most once.
func (e *engine) evalScenario(ctx context.Context, sc experiments.Scenario) (eval, error) {
	keys, err := e.session.Keys(sc)
	if err != nil {
		if errors.Is(err, experiments.ErrConflictingInjections) {
			return eval{}, nil
		}
		return eval{}, err
	}
	if e.store != nil {
		data, _, err := e.store.GetOrBuild(ctx, artifact.ClassVerdict, keys.Build+"|"+e.runKey, func() ([]byte, error) {
			v, err := e.session.Verdict(ctx, sc)
			if err != nil {
				return nil, err
			}
			return encodeVerdict(v.FailureRate), nil
		})
		if err != nil {
			return eval{}, err
		}
		if rate, derr := decodeVerdict(data); derr == nil {
			return eval{rate: rate, feasible: true}, nil
		}
		// Stale codec on disk: fall through and recompute directly.
	}
	v, err := e.session.Verdict(ctx, sc)
	if err != nil {
		return eval{}, err
	}
	return eval{rate: v.FailureRate, feasible: true}, nil
}

// evalAll evaluates scenarios with a bounded worker pool, results
// landing in slots indexed by position so ordering never depends on
// completion timing. The lowest-index error wins, mirroring the
// session's own run-set semantics.
func (e *engine) evalAll(ctx context.Context, scs []experiments.Scenario) ([]eval, error) {
	out := make([]eval, len(scs))
	errs := make([]error, len(scs))
	par := e.par
	if par > len(scs) {
		par = len(scs)
	}
	if par < 1 {
		par = 1
	}
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(scs) || failed.Load() {
					return
				}
				ev, err := e.evalScenario(ctx, scs[i])
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				out[i] = ev
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// visit marks a subset evaluated, counting distinct subsets once.
func (e *engine) visit(subset []int) {
	k := subsetKey(subset)
	if !e.visited[k] {
		e.visited[k] = true
		e.stats.Evaluations++
	}
}

// better reports whether a beats b under the objective's total order.
// minflip: smaller, then higher rate, then canonical order; maxdelta
// and rank: higher rate, then smaller, then canonical order.
func (e *engine) better(a, b *node) bool {
	if a == nil {
		return false
	}
	if b == nil {
		return true
	}
	if e.objective == ObjectiveMinFlip {
		if len(a.ids) != len(b.ids) {
			return len(a.ids) < len(b.ids)
		}
		if a.rate != b.rate {
			return a.rate > b.rate
		}
	} else {
		if a.rate != b.rate {
			return a.rate > b.rate
		}
		if len(a.ids) != len(b.ids) {
			return len(a.ids) < len(b.ids)
		}
	}
	return idsLess(a.ids, b.ids)
}

func idsLess(a, b []string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// takeIncumbent installs n if it beats the incumbent, recording the
// trace entry and publishing to the shared store.
func (e *engine) takeIncumbent(ctx context.Context, n *node, by string) {
	if !e.better(n, e.best) {
		return
	}
	e.best = n
	e.incumbents = append(e.incumbents, IncumbentUpdate{
		Wave:   n.wave,
		By:     by,
		Subset: Subset{IDs: n.ids, Rate: n.rate},
	})
	e.emit(Event{Kind: EventIncumbent, Wave: n.wave, IDs: n.ids, Rate: n.rate, By: by})
	e.publishIncumbent(ctx)
}

func (e *engine) run(ctx context.Context) (*Result, error) {
	// Base rate.
	e.visit(nil)
	bev, err := e.evalScenario(ctx, e.base)
	if err != nil {
		return nil, err
	}
	if !bev.feasible {
		return nil, fmt.Errorf("search: base scenario: %w", experiments.ErrConflictingInjections)
	}
	e.baseRate = bev.rate

	// Wave 1: probe every candidate alone, in request order, then
	// derive the priority order (probe delta descending, ID
	// ascending) every later wave indexes by.
	e.emit(Event{Kind: EventWave, Wave: 1})
	probeScs := make([]experiments.Scenario, len(e.pool))
	for i := range e.pool {
		probeScs[i] = e.rawScenarioFor(i)
	}
	probes, err := e.evalAll(ctx, probeScs)
	if err != nil {
		return nil, err
	}
	candidates := e.reorder(probes)

	res := &Result{
		Objective:  e.objective,
		MaxSubset:  e.maxSubset,
		BaseName:   e.base.Name(),
		BaseRate:   e.baseRate,
		Candidates: candidates,
	}
	if e.objective == ObjectiveMinFlip {
		res.Threshold = e.threshold
	}
	e.stats.Waves = 1
	e.stats.Exhaustive = exhaustiveCount(len(e.pool), e.maxSubset)

	// Canonical processing of the probes: expansion events, stats and
	// (for minflip/maxdelta) the first incumbents.
	switch e.objective {
	case ObjectiveMinFlip:
		if e.baseRate >= e.threshold {
			// The base already flips: the empty subset is minimal.
			e.takeIncumbent(ctx, &node{subset: []int{}, ids: []string{}, rate: e.baseRate, wave: 0}, "probe")
		}
	case ObjectiveMaxDelta:
		// The empty subset is the do-nothing floor.
		e.takeIncumbent(ctx, &node{subset: []int{}, ids: []string{}, rate: e.baseRate, wave: 0}, "probe")
	}
	for i := range e.pool {
		e.visitRaw(probes, i)
	}
	var frontier []node
	for j := range e.order {
		n := node{subset: []int{j}, ids: e.idsOf([]int{j}), rate: e.rates[j], wave: 1}
		e.stats.Expanded++
		e.emit(Event{Kind: EventExpanded, Wave: 1, IDs: n.ids, Rate: n.rate})
		switch e.objective {
		case ObjectiveMinFlip:
			if n.rate >= e.threshold {
				e.takeIncumbent(ctx, &n, "probe")
				continue // any superset is larger; no need to extend
			}
		case ObjectiveMaxDelta, ObjectiveRank:
			e.takeIncumbent(ctx, &n, "probe")
		}
		frontier = append(frontier, n)
	}

	if e.objective == ObjectiveRank || e.doneAfterProbes() {
		return e.finish(res), nil
	}

	// Greedy warm start: evaluate priority-order prefixes to seed the
	// incumbent before the breadth-first waves begin.
	if err := e.greedy(ctx); err != nil {
		return nil, err
	}

	// Breadth-first waves of increasing subset size.
	for k := 2; k <= e.maxSubset; k++ {
		if e.objective == ObjectiveMinFlip && e.best != nil && len(e.best.ids) <= k {
			break // only strictly smaller subsets can improve
		}
		children := e.expand(frontier, k)
		if len(children) == 0 {
			break
		}
		e.stats.Waves = k
		e.emit(Event{Kind: EventWave, Wave: k})
		scs := make([]experiments.Scenario, len(children))
		for i, c := range children {
			e.visit(c)
			scs[i] = e.scenarioFor(c)
		}
		evs, err := e.evalAll(ctx, scs)
		if err != nil {
			return nil, err
		}
		frontier = frontier[:0]
		for i, c := range children {
			n := node{subset: c, ids: e.idsOf(c), rate: evs[i].rate, wave: k}
			e.stats.Expanded++
			if !evs[i].feasible {
				e.stats.Infeasible++
				continue // conflicts are hereditary: prune the subtree
			}
			e.emit(Event{Kind: EventExpanded, Wave: k, IDs: n.ids, Rate: n.rate})
			switch e.objective {
			case ObjectiveMinFlip:
				if n.rate >= e.threshold {
					e.takeIncumbent(ctx, &n, "search")
					continue
				}
			case ObjectiveMaxDelta:
				e.takeIncumbent(ctx, &n, "search")
			}
			frontier = append(frontier, n)
		}
	}
	return e.finish(res), nil
}

// visitRaw marks a probe subset visited in priority-index space.
func (e *engine) visitRaw(probes []eval, i int) {
	for j, oi := range e.order {
		if oi == i {
			e.visit([]int{j})
			return
		}
	}
	// Infeasible singleton: count the visit under a synthetic key so
	// distinct-subset accounting still sees it exactly once.
	if probes[i].feasible {
		return
	}
	k := "x" + strconv.Itoa(i)
	if !e.visited[k] {
		e.visited[k] = true
		e.stats.Evaluations++
		e.stats.Expanded++
		e.stats.Infeasible++
	}
}

// reorder derives the priority order from the probe results and fills
// the engine's priority-space tables. It returns the report
// candidates: feasible entries in priority order, infeasible last.
func (e *engine) reorder(probes []eval) []Candidate {
	type cand struct {
		i     int
		id    string
		delta float64
	}
	var feas, infeas []cand
	for i, p := range probes {
		c := cand{i: i, id: e.pool[i].ID(), delta: p.rate - e.baseRate}
		if p.feasible {
			feas = append(feas, c)
		} else {
			infeas = append(infeas, c)
		}
	}
	sort.Slice(feas, func(a, b int) bool {
		if feas[a].delta != feas[b].delta {
			return feas[a].delta > feas[b].delta
		}
		return feas[a].id < feas[b].id
	})
	sort.Slice(infeas, func(a, b int) bool { return infeas[a].id < infeas[b].id })

	e.order = make([]int, len(feas))
	e.deltas = make([]float64, len(feas))
	e.rates = make([]float64, len(feas))
	candidates := make([]Candidate, 0, len(probes))
	for j, c := range feas {
		e.order[j] = c.i
		e.deltas[j] = c.delta
		e.rates[j] = probes[c.i].rate
		candidates = append(candidates, Candidate{ID: c.id, Rate: probes[c.i].rate, Delta: c.delta, Feasible: true})
	}
	for _, c := range infeas {
		candidates = append(candidates, Candidate{ID: c.id, Delta: 0, Feasible: false})
	}

	// topExtra[j][d]: sum of the d largest positive deltas at indices
	// >= j. m <= MaxPool keeps the quadratic table trivial.
	m := len(feas)
	e.topExtra = make([][]float64, m+1)
	for j := m; j >= 0; j-- {
		pos := make([]float64, 0, m-j)
		for t := j; t < m; t++ {
			if e.deltas[t] > 0 {
				pos = append(pos, e.deltas[t])
			}
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(pos)))
		row := make([]float64, m+1)
		for d := 1; d <= m; d++ {
			row[d] = row[d-1]
			if d-1 < len(pos) {
				row[d] += pos[d-1]
			}
		}
		e.topExtra[j] = row
	}
	return candidates
}

// upperBound is the optimistic failure rate any descendant of parent
// extended first by priority index j can reach, allowed to grow by at
// most `extra` further members. It assumes rate gains are sub-additive
// — composing an injection never raises the failure rate by more than
// its solo probe delta — which makes the bound monotone along any
// root-to-leaf path.
func (e *engine) upperBound(parentRate float64, j, extra int) float64 {
	ub := parentRate + max0(e.deltas[j])
	if extra > 0 {
		ub += e.topExtra[j+1][extra]
	}
	if ub > 1 {
		ub = 1
	}
	return ub
}

func max0(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// expand generates wave k's admitted children in canonical order
// (frontier order, then extension index ascending — lexicographic over
// index tuples), applying the incumbent-aware bound to each.
func (e *engine) expand(frontier []node, k int) [][]int {
	e.adoptIncumbent(k)
	// target is the largest subset size still worth growing toward.
	target := e.maxSubset
	if e.objective == ObjectiveMinFlip && e.best != nil && len(e.best.ids)-1 < target {
		target = len(e.best.ids) - 1
	}
	var children [][]int
	for _, p := range frontier {
		last := -1
		if len(p.subset) > 0 {
			last = p.subset[len(p.subset)-1]
		}
		for j := last + 1; j < len(e.order); j++ {
			child := append(append(make([]int, 0, k), p.subset...), j)
			ub := e.upperBound(p.rate, j, target-k)
			prune := false
			switch e.objective {
			case ObjectiveMinFlip:
				prune = k > target || ub < e.threshold
			case ObjectiveMaxDelta:
				prune = e.best != nil && ub < e.best.rate
			}
			if prune {
				e.stats.Pruned++
				e.emit(Event{Kind: EventPruned, Wave: k, IDs: e.idsOf(child), Rate: ub})
				continue
			}
			children = append(children, child)
		}
	}
	return children
}

// greedy evaluates priority-order prefixes of growing size — the
// classic warm start — so the first waves already prune against a
// plausible incumbent.
func (e *engine) greedy(ctx context.Context) error {
	prefix := []int{0}
	for size := 2; size <= e.maxSubset; size++ {
		if e.objective == ObjectiveMinFlip && e.best != nil && len(e.best.ids) <= size {
			return nil
		}
		if size-1 >= len(e.order) {
			return nil
		}
		prefix = append(prefix, size-1)
		e.visit(prefix)
		evs, err := e.evalAll(ctx, []experiments.Scenario{e.scenarioFor(prefix)})
		if err != nil {
			return err
		}
		n := node{subset: append([]int(nil), prefix...), ids: e.idsOf(prefix), rate: evs[0].rate, wave: 0}
		e.stats.Expanded++
		if !evs[0].feasible {
			e.stats.Infeasible++
			return nil // a conflicting prefix conflicts in every extension
		}
		e.emit(Event{Kind: EventExpanded, Wave: 0, IDs: n.ids, Rate: n.rate})
		switch e.objective {
		case ObjectiveMinFlip:
			if n.rate >= e.threshold {
				e.takeIncumbent(ctx, &n, "greedy")
				return nil
			}
		case ObjectiveMaxDelta:
			e.takeIncumbent(ctx, &n, "greedy")
		}
	}
	return nil
}

func (e *engine) doneAfterProbes() bool {
	if e.maxSubset <= 1 || len(e.order) == 0 {
		return true
	}
	// A flipping subset of size <= 1 already exists: minimal by
	// construction.
	return e.objective == ObjectiveMinFlip && e.best != nil && len(e.best.ids) <= 1
}

func (e *engine) finish(res *Result) *Result {
	if e.best != nil {
		if e.objective == ObjectiveMinFlip && e.best.rate < e.threshold {
			// Shouldn't happen — minflip incumbents always flip — but
			// never report a non-flipping Best.
			res.Best = nil
		} else {
			res.Best = &Subset{IDs: e.best.ids, Rate: e.best.rate}
		}
	}
	res.Incumbents = e.incumbents
	res.Stats = e.stats
	return res
}

// exhaustiveCount is sum_{k=0..maxSub} C(n, k): the subsets a full
// enumeration would evaluate. n <= MaxPool keeps it inside int64.
func exhaustiveCount(n, maxSub int) int64 {
	var total int64
	c := int64(1) // C(n, 0)
	total = c
	for k := 1; k <= maxSub && k <= n; k++ {
		c = c * int64(n-k+1) / int64(k)
		total += c
	}
	return total
}
