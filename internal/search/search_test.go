package search

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"github.com/climate-rca/rca/internal/artifact"
	"github.com/climate-rca/rca/internal/corpus"
	"github.com/climate-rca/rca/internal/experiments"
)

// smokeCfg is the corpus the seeded search case is calibrated
// against; the session sizes below are part of the calibration (the
// failure rates are fractions of the experimental-set size).
var smokeCfg = corpus.Config{AuxModules: 10, Seed: 5}

func smokeSession(t testing.TB, opts ...experiments.Option) *experiments.Session {
	t.Helper()
	all := append([]experiments.Option{
		experiments.WithEnsembleSize(16),
		experiments.WithExpSize(6),
	}, opts...)
	return experiments.NewSession(smokeCfg, all...)
}

func scale(v string, f float64) experiments.Injection {
	return experiments.ScaleAssignment{Module: "micro_mg", Subprogram: "micro_mg_tend", Var: v, Factor: f}
}

// seededPool is the calibrated §6-style pool: no singleton flips at
// the 50% threshold, the minimal flipping subset is the known pair
// {tlat*1.00015, pre*1.0003}, and the two weakest candidates conflict
// with stronger ones (same assignment) to keep the infeasible paths
// honest.
func seededPool() []experiments.Injection {
	return []experiments.Injection{
		scale("tlat", 1.00015),  // probe 2/6
		scale("qsout", 1.0001),  // probe 2/6
		scale("pre", 1.0003),    // probe 1/6
		scale("qric", 1.0002),   // probe 1/6
		scale("pre", 1.00025),   // probe 0/6, conflicts with pre*1.0003
		scale("qsout", 1.00005), // probe 0/6, conflicts with qsout*1.0001
	}
}

func runSeeded(t *testing.T, s *experiments.Session, par int) (*Result, []Event) {
	t.Helper()
	var events []Event
	res, err := Run(context.Background(), s, Options{
		Pool:        seededPool(),
		Objective:   ObjectiveMinFlip,
		Parallelism: par,
		Progress:    func(ev Event) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	return res, events
}

// TestSearchMinFlipSeeded pins the end-to-end behavior on the seeded
// case: the known minimal verdict-flipping pair is found, the greedy
// warm start seeds the incumbent first, and pruning beats exhaustive
// enumeration by a wide margin.
func TestSearchMinFlipSeeded(t *testing.T) {
	res, _ := runSeeded(t, smokeSession(t), 4)

	wantBest := []string{
		"scale:micro_mg/micro_mg_tend.tlat*1.00015",
		"scale:micro_mg/micro_mg_tend.pre*1.0003",
	}
	if res.Best == nil {
		t.Fatalf("no flipping subset found: %+v", res)
	}
	if !reflect.DeepEqual(res.Best.IDs, wantBest) {
		t.Fatalf("best = %v, want %v", res.Best.IDs, wantBest)
	}
	if res.Best.Rate < res.Threshold {
		t.Fatalf("best rate %v below threshold %v", res.Best.Rate, res.Threshold)
	}
	if len(res.Incumbents) < 2 {
		t.Fatalf("incumbent trace %+v, want greedy seed then wave improvement", res.Incumbents)
	}
	if first := res.Incumbents[0]; first.By != "greedy" || len(first.Subset.IDs) != 3 {
		t.Fatalf("first incumbent = %+v, want greedy size-3 warm start", first)
	}
	if last := res.Incumbents[len(res.Incumbents)-1]; last.By != "search" || last.Wave != 2 {
		t.Fatalf("final incumbent = %+v, want wave-2 search discovery", last)
	}
	if res.Stats.Exhaustive != 64 { // sum C(6,k), k=0..6
		t.Fatalf("exhaustive = %d, want 64", res.Stats.Exhaustive)
	}
	if res.Stats.Evaluations*3 > int(res.Stats.Exhaustive) {
		t.Fatalf("evaluations = %d of %d exhaustive: pruning too weak",
			res.Stats.Evaluations, res.Stats.Exhaustive)
	}
	if res.Stats.Pruned == 0 {
		t.Fatal("no subtrees pruned")
	}
	// The probe phase must report every candidate, feasible ones in
	// priority order.
	if len(res.Candidates) != 6 {
		t.Fatalf("candidates = %d, want 6", len(res.Candidates))
	}
	for i := 1; i < len(res.Candidates); i++ {
		a, b := res.Candidates[i-1], res.Candidates[i]
		if a.Feasible && b.Feasible && a.Delta < b.Delta {
			t.Fatalf("candidates out of priority order: %v before %v", a, b)
		}
	}
}

// TestSearchDeterministic is the parallelism pin: the same request at
// parallelism 1, 2 and 8 yields an identical result — incumbent
// trace, stats, candidates, best — and an identical event stream.
func TestSearchDeterministic(t *testing.T) {
	var ref *Result
	var refEvents []Event
	for _, par := range []int{1, 2, 8} {
		res, events := runSeeded(t, smokeSession(t), par)
		if ref == nil {
			ref, refEvents = res, events
			continue
		}
		if !reflect.DeepEqual(res, ref) {
			t.Fatalf("parallelism %d result diverges:\n got %+v\nwant %+v", par, res, ref)
		}
		if !reflect.DeepEqual(events, refEvents) {
			t.Fatalf("parallelism %d event stream diverges (%d events vs %d)",
				par, len(events), len(refEvents))
		}
	}
}

// TestSearchMaxDelta checks the bounded-size max-rate objective on the
// same pool: the winner must reach at least the minflip pair's rate
// and respect the subset cap.
func TestSearchMaxDelta(t *testing.T) {
	s := smokeSession(t)
	res, err := Run(context.Background(), s, Options{
		Pool:        seededPool(),
		Objective:   ObjectiveMaxDelta,
		MaxSubset:   2,
		Parallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || res.Best.Rate < 0.99 {
		t.Fatalf("best = %+v, want a rate-1.0 pair", res.Best)
	}
	if len(res.Best.IDs) > 2 {
		t.Fatalf("best %v exceeds subset cap", res.Best.IDs)
	}
	// maxdelta keeps its incumbent total order: later trace entries
	// are strictly better.
	for i := 1; i < len(res.Incumbents); i++ {
		prev, cur := res.Incumbents[i-1].Subset, res.Incumbents[i].Subset
		if cur.Rate < prev.Rate {
			t.Fatalf("incumbent trace regressed: %+v after %+v", cur, prev)
		}
	}
}

// TestSearchRank checks the probe-only ranking objective.
func TestSearchRank(t *testing.T) {
	s := smokeSession(t)
	res, err := Run(context.Background(), s, Options{
		Pool:        seededPool()[:4],
		Objective:   ObjectiveRank,
		Parallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Waves != 1 {
		t.Fatalf("rank explored %d waves, want probes only", res.Stats.Waves)
	}
	if res.Best == nil || len(res.Best.IDs) != 1 {
		t.Fatalf("best = %+v, want the top singleton", res.Best)
	}
	if res.Best.IDs[0] != res.Candidates[0].ID {
		t.Fatalf("best %v != top candidate %v", res.Best.IDs, res.Candidates[0].ID)
	}
}

// TestSearchInfeasibleSubsets drives the conflict path: two FMA
// policies are individually fine but conflict when composed, so the
// pair node must count as infeasible and prune its subtree instead of
// failing the search.
func TestSearchInfeasibleSubsets(t *testing.T) {
	s := smokeSession(t)
	res, err := Run(context.Background(), s, Options{
		Pool: []experiments.Injection{
			experiments.EnableFMA(),
			experiments.EnableFMA("micro_mg"),
		},
		Objective:   ObjectiveMaxDelta,
		MaxSubset:   2,
		Parallelism: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Infeasible == 0 {
		t.Fatalf("stats = %+v, want the conflicting pair counted infeasible", res.Stats)
	}
	if res.Best == nil || len(res.Best.IDs) > 1 {
		t.Fatalf("best = %+v, want a singleton (the pair conflicts)", res.Best)
	}
}

// TestSearchValidation covers the request validation surface.
func TestSearchValidation(t *testing.T) {
	s := smokeSession(t)
	ctx := context.Background()
	cases := []struct {
		name string
		opts Options
	}{
		{"empty pool", Options{}},
		{"duplicate ids", Options{Pool: []experiments.Injection{scale("tlat", 1.1), scale("tlat", 1.1)}}},
		{"bad objective", Options{Pool: seededPool()[:1], Objective: "bogus"}},
		{"bad threshold", Options{Pool: seededPool()[:1], Threshold: 1.5}},
		{"negative maxsubset", Options{Pool: seededPool()[:1], MaxSubset: -1}},
	}
	for _, tc := range cases {
		if _, err := Run(ctx, s, tc.opts); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

// TestSearchSharedStore is the distributed pin: two sessions sharing
// one artifact store produce bit-identical results — concurrently
// (incumbent sharing active) and on a warm restart, where every node
// evaluation must come from the store.
func TestSearchSharedStore(t *testing.T) {
	dir := t.TempDir()
	open := func() (*experiments.Session, *artifact.Store) {
		store, err := artifact.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return smokeSession(t, experiments.WithArtifacts(store)), store
	}

	s1, _ := open()
	s2, _ := open()
	var res [2]*Result
	var wg sync.WaitGroup
	for i, s := range []*experiments.Session{s1, s2} {
		wg.Add(1)
		go func(i int, s *experiments.Session) {
			defer wg.Done()
			r, err := Run(context.Background(), s, Options{
				Pool:        seededPool(),
				Objective:   ObjectiveMinFlip,
				Parallelism: 2,
			})
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
				return
			}
			res[i] = r
		}(i, s)
	}
	wg.Wait()
	if res[0] == nil || res[1] == nil {
		t.Fatal("a worker failed")
	}
	if !reflect.DeepEqual(res[0], res[1]) {
		t.Fatalf("two-worker results diverge:\n  %+v\n  %+v", res[0], res[1])
	}

	// Warm restart: a fresh session over the same store must replay
	// the search entirely from stored verdicts and match bit for bit.
	s3, store3 := open()
	r3, err := Run(context.Background(), s3, Options{
		Pool:        seededPool(),
		Objective:   ObjectiveMinFlip,
		Parallelism: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r3, res[0]) {
		t.Fatalf("warm-restart result diverges:\n  %+v\n  %+v", r3, res[0])
	}
	if st := store3.Stats(); st.Misses > 0 {
		t.Fatalf("warm restart missed the store %d times", st.Misses)
	}
}

// TestRequestJSONRoundTrip pins the wire format: parse -> serialize ->
// parse preserves objective, knobs, base identity and pool IDs.
func TestRequestJSONRoundTrip(t *testing.T) {
	doc := []byte(`{
		"objective": "minflip",
		"threshold": 0.5,
		"maxsubset": 3,
		"base": {"name": "warm", "inject": ["prng=mt"]},
		"pool": [
			"param:turbcoef=0.02",
			{"kind": "scale", "module": "micro_mg", "subprogram": "micro_mg_tend", "var": "tlat", "factor": 1.00015}
		]
	}`)
	req, err := RequestFromJSON(doc)
	if err != nil {
		t.Fatal(err)
	}
	out, err := RequestToJSON(req)
	if err != nil {
		t.Fatal(err)
	}
	again, err := RequestFromJSON(out)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, out)
	}
	if again.Objective != req.Objective || again.Threshold != req.Threshold || again.MaxSubset != req.MaxSubset {
		t.Fatalf("knobs diverge: %+v vs %+v", again, req)
	}
	if len(again.Pool) != len(req.Pool) {
		t.Fatalf("pool size diverges")
	}
	for i := range req.Pool {
		if again.Pool[i].ID() != req.Pool[i].ID() {
			t.Fatalf("pool[%d] = %s, want %s", i, again.Pool[i].ID(), req.Pool[i].ID())
		}
	}
	if again.Base == nil || again.Base.Name() != "warm" || len(again.Base.Injections()) != 1 {
		t.Fatalf("base lost in round-trip: %+v", again.Base)
	}

	if _, err := RequestFromJSON([]byte(`{"pool": [], "bogus": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := RequestFromJSON([]byte(`{"pool": ["nonsense grammar"]}`)); err == nil {
		t.Fatal("bad pool entry accepted")
	}
}
