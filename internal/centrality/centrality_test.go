package centrality

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/climate-rca/rca/internal/graph"
)

func star(n int) *graph.Digraph {
	// Hub 0 with spokes 1..n-1 pointing INTO the hub.
	g := graph.New(n)
	g.AddNodes(n)
	for i := 1; i < n; i++ {
		g.AddEdge(i, 0)
	}
	return g
}

func cycle(n int) *graph.Digraph {
	g := graph.New(n)
	g.AddNodes(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

func TestDegree(t *testing.T) {
	g := star(5)
	d := Degree(g)
	if d[0] != 1.0 { // degree 4 / (n-1)=4
		t.Fatalf("hub degree centrality = %v; want 1", d[0])
	}
	if d[1] != 0.25 {
		t.Fatalf("spoke = %v; want 0.25", d[1])
	}
}

func TestInDegree(t *testing.T) {
	g := star(5)
	d := InDegree(g)
	if d[0] != 1.0 || d[1] != 0 {
		t.Fatalf("in-degree = %v", d)
	}
}

func TestEigenvectorInFavorsSink(t *testing.T) {
	// Spokes point into hub: hub should dominate in-centrality.
	g := star(8)
	c := EigenvectorIn(g, Options{})
	for i := 1; i < 8; i++ {
		if c[0] <= c[i] {
			t.Fatalf("hub in-centrality %v not above spoke %v", c[0], c[i])
		}
	}
	// Out-centrality is the mirror: spokes (which point at the hub)
	// should beat the hub.
	o := Eigenvector(g, Options{})
	if o[0] >= o[1] {
		t.Fatalf("hub out-centrality %v should be below spoke %v", o[0], o[1])
	}
}

func TestEigenvectorCycleUniform(t *testing.T) {
	g := cycle(6)
	c := EigenvectorIn(g, Options{})
	for i := 1; i < 6; i++ {
		if math.Abs(c[i]-c[0]) > 1e-6 {
			t.Fatalf("cycle not uniform: %v", c)
		}
	}
}

func TestEigenvectorEmptyAndSingle(t *testing.T) {
	if c := EigenvectorIn(graph.New(0), Options{}); c != nil {
		t.Fatalf("empty graph = %v", c)
	}
	g := graph.New(1)
	g.AddNode()
	c := EigenvectorIn(g, Options{})
	if len(c) != 1 {
		t.Fatalf("len = %d", len(c))
	}
}

func TestTopK(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.9}
	top := TopK(scores, 3)
	if top[0].Node != 1 || top[1].Node != 3 || top[2].Node != 2 {
		t.Fatalf("TopK = %+v", top)
	}
	if got := TopK(scores, 99); len(got) != 4 {
		t.Fatalf("TopK clamp failed: %d", len(got))
	}
}

func TestPageRankSums(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.New(30)
	g.AddNodes(30)
	for i := 0; i < 80; i++ {
		u, v := rng.Intn(30), rng.Intn(30)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	pr := PageRank(g, 0.85, Options{})
	var sum float64
	for _, p := range pr {
		sum += p
		if p < 0 {
			t.Fatalf("negative PageRank %v", p)
		}
	}
	if math.Abs(sum-1) > 1e-8 {
		t.Fatalf("PageRank sum = %v; want 1", sum)
	}
}

func TestPageRankSinkGetsMass(t *testing.T) {
	// 0->2, 1->2: sink 2 should outrank sources.
	g := graph.New(3)
	g.AddNodes(3)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	pr := PageRank(g, 0.85, Options{})
	if pr[2] <= pr[0] {
		t.Fatalf("sink %v not above source %v", pr[2], pr[0])
	}
}

func TestBetweennessPath(t *testing.T) {
	// Path 0->1->2: only node 1 lies between.
	g := graph.New(3)
	g.AddNodes(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	b := Betweenness(g)
	if b[1] != 1 {
		t.Fatalf("b[1] = %v; want 1", b[1])
	}
	if b[0] != 0 || b[2] != 0 {
		t.Fatalf("endpoints nonzero: %v", b)
	}
}

func TestNonBacktrackingCycle(t *testing.T) {
	// A symmetric cycle supports non-backtracking walks; scores should
	// be uniform and positive.
	g := cycle(5).Undirected()
	c := NonBacktracking(g, Options{})
	for i, v := range c {
		if v <= 0 {
			t.Fatalf("node %d score %v; want > 0", i, v)
		}
		if math.Abs(v-c[0]) > 1e-6 {
			t.Fatalf("cycle NB centrality not uniform: %v", c)
		}
	}
}

func TestNonBacktrackingTreeDies(t *testing.T) {
	// On an undirected tree every non-backtracking walk dies; scores 0.
	g := graph.New(3)
	g.AddNodes(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	c := NonBacktracking(g, Options{})
	for i, v := range c {
		if v != 0 {
			t.Fatalf("tree node %d score %v; want 0", i, v)
		}
	}
}

func TestNonBacktrackingIsolatedNodeZero(t *testing.T) {
	g := cycle(4).Undirected()
	iso := g.AddNode()
	c := NonBacktracking(g, Options{})
	if c[iso] != 0 {
		t.Fatalf("isolated node score = %v", c[iso])
	}
}

// Property: centrality vectors are non-negative and finite on random
// graphs.
func TestCentralityNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := graph.New(n)
		g.AddNodes(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		for _, scores := range [][]float64{
			EigenvectorIn(g, Options{}),
			Eigenvector(g, Options{}),
			PageRank(g, 0.85, Options{}),
			Betweenness(g),
			NonBacktracking(g.Undirected(), Options{}),
		} {
			for _, s := range scores {
				if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
