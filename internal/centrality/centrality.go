// Package centrality implements the node-importance measures used by the
// iterative refinement procedure (Milroy et al. §5.2-5.3): degree and
// eigenvector centrality (including the in-centrality variant used to
// pick sampling sites), PageRank, betweenness, and the Hashimoto
// non-backtracking centrality analysed in the paper's supplement §8.1.
package centrality

import (
	"math"
	"sort"

	"github.com/climate-rca/rca/internal/graph"
)

// Ranked pairs a node id with a centrality score.
type Ranked struct {
	Node  int
	Score float64
}

// TopK returns the k highest-scoring entries of scores in descending
// score order, breaking ties by ascending node id for determinism.
func TopK(scores []float64, k int) []Ranked {
	rs := make([]Ranked, len(scores))
	for i, s := range scores {
		rs[i] = Ranked{Node: i, Score: s}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return rs[i].Node < rs[j].Node
	})
	if k > len(rs) {
		k = len(rs)
	}
	return rs[:k]
}

// Degree returns total-degree centrality normalized by (n-1).
func Degree(g *graph.Digraph) []float64 {
	n := g.NumNodes()
	out := make([]float64, n)
	if n <= 1 {
		return out
	}
	for u := 0; u < n; u++ {
		out[u] = float64(g.Degree(u)) / float64(n-1)
	}
	return out
}

// InDegree returns in-degree centrality normalized by (n-1).
func InDegree(g *graph.Digraph) []float64 {
	n := g.NumNodes()
	out := make([]float64, n)
	if n <= 1 {
		return out
	}
	for u := 0; u < n; u++ {
		out[u] = float64(g.InDegree(u)) / float64(n-1)
	}
	return out
}

// Options configures iterative eigensolvers.
type Options struct {
	MaxIter int     // power-iteration cap (default 200)
	Tol     float64 // L1 convergence tolerance (default 1e-10)
	// Parallelism bounds the matvec worker pool (default 1). Scores
	// are bit-identical at every parallelism level: each node's sum is
	// computed by exactly one worker in a fixed adjacency order, and
	// the norm/convergence reductions stay sequential.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.Parallelism <= 0 {
		o.Parallelism = 1
	}
	return o
}

// Eigenvector computes eigenvector out-centrality by power iteration on
// the adjacency matrix A: x_{k+1} = A x_k, i.e. a node is central if it
// points at central nodes. Scores are L2-normalized and non-negative.
//
// A small teleport term (1e-4 of uniform mass) is mixed in so the
// iteration converges on graphs that are not strongly connected, which
// CESM variable subgraphs never are; this matches NetworkX's practical
// behaviour with nstart and tolerates sink/source structure.
func Eigenvector(g *graph.Digraph, opt Options) []float64 {
	return eigen(g, opt, false)
}

// EigenvectorIn computes eigenvector in-centrality: x_{k+1} = Aᵀ x_k, so
// a node is central if central nodes point at it — the "information
// sink" orientation the paper samples (§5.3).
func EigenvectorIn(g *graph.Digraph, opt Options) []float64 {
	return eigen(g, opt, true)
}

// eigen runs power iteration on a frozen CSR snapshot. The matvec is
// pull-based — for in-centrality score(v) sums x over v's in-neighbors
// (each edge u->v credits v), for out-centrality over v's
// out-neighbors — so a worker owns a contiguous range of target nodes
// and writes next[v] without contention. Sharding cannot change the
// result: every per-node sum runs in the node's fixed adjacency order
// on exactly one worker, and the norm/convergence reductions are
// sequential.
func eigen(g *graph.Digraph, opt Options, in bool) []float64 {
	opt = opt.withDefaults()
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	c := graph.Freeze(g)
	x := make([]float64, n)
	next := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	const teleport = 1e-4
	shards := graph.NumShards(n)
	// Below ~1k nodes (the common community-subgraph case) a matvec is
	// sub-microsecond and goroutine setup would dominate; run on the
	// calling goroutine. Values are unaffected either way.
	par := opt.Parallelism
	if n < 1024 {
		par = 1
	}
	for iter := 0; iter < opt.MaxIter; iter++ {
		uniform := teleport / float64(n)
		graph.ParallelShards(par, shards, func(shard, _ int) {
			lo, hi := graph.ShardRange(n, shards, shard)
			for v := lo; v < hi; v++ {
				s := uniform
				if in {
					for _, u := range c.In(v) {
						s += x[u]
					}
				} else {
					for _, w := range c.Out(v) {
						s += x[w]
					}
				}
				next[v] = s
			}
		})
		norm := l2(next)
		if norm == 0 {
			return next
		}
		var diff float64
		for i := range next {
			next[i] /= norm
			diff += math.Abs(next[i] - x[i])
		}
		x, next = next, x
		if diff < opt.Tol*float64(n) {
			break
		}
	}
	return x
}

func l2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// PageRank computes PageRank with damping factor d (use 0.85 when in
// doubt). Dangling mass is redistributed uniformly.
func PageRank(g *graph.Digraph, d float64, opt Options) []float64 {
	opt = opt.withDefaults()
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	x := make([]float64, n)
	next := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	for iter := 0; iter < opt.MaxIter; iter++ {
		var dangling float64
		for u := 0; u < n; u++ {
			if g.OutDegree(u) == 0 {
				dangling += x[u]
			}
		}
		base := (1-d)/float64(n) + d*dangling/float64(n)
		for i := range next {
			next[i] = base
		}
		for u := 0; u < n; u++ {
			if deg := g.OutDegree(u); deg > 0 {
				share := d * x[u] / float64(deg)
				for _, v := range g.Out(u) {
					next[v] += share
				}
			}
		}
		var diff float64
		for i := range next {
			diff += math.Abs(next[i] - x[i])
		}
		x, next = next, x
		if diff < opt.Tol*float64(n) {
			break
		}
	}
	return x
}

// Betweenness computes Brandes node betweenness centrality on the
// directed graph (unweighted). Scores are raw path counts (not
// normalized).
func Betweenness(g *graph.Digraph) []float64 {
	n := g.NumNodes()
	cb := make([]float64, n)
	// Reusable buffers.
	dist := make([]int, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	preds := make([][]int32, n)
	stack := make([]int32, 0, n)
	queue := make([]int32, 0, n)

	for s := 0; s < n; s++ {
		stack = stack[:0]
		queue = queue[:0]
		for i := 0; i < n; i++ {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		dist[s] = 0
		sigma[s] = 1
		queue = append(queue, int32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			stack = append(stack, v)
			for _, w := range g.Out(int(v)) {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		for i := len(stack) - 1; i >= 0; i-- {
			w := stack[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if int(w) != s {
				cb[w] += delta[w]
			}
		}
	}
	return cb
}
