// Package centrality implements the node-importance measures used by the
// iterative refinement procedure (Milroy et al. §5.2-5.3): degree and
// eigenvector centrality (including the in-centrality variant used to
// pick sampling sites), PageRank, betweenness, and the Hashimoto
// non-backtracking centrality analysed in the paper's supplement §8.1.
package centrality

import (
	"math"
	"sort"

	"github.com/climate-rca/rca/internal/graph"
)

// Ranked pairs a node id with a centrality score.
type Ranked struct {
	Node  int
	Score float64
}

// TopK returns the k highest-scoring entries of scores in descending
// score order, breaking ties by ascending node id for determinism.
func TopK(scores []float64, k int) []Ranked {
	rs := make([]Ranked, len(scores))
	for i, s := range scores {
		rs[i] = Ranked{Node: i, Score: s}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return rs[i].Node < rs[j].Node
	})
	if k > len(rs) {
		k = len(rs)
	}
	return rs[:k]
}

// Degree returns total-degree centrality normalized by (n-1).
func Degree(g *graph.Digraph) []float64 {
	n := g.NumNodes()
	out := make([]float64, n)
	if n <= 1 {
		return out
	}
	for u := 0; u < n; u++ {
		out[u] = float64(g.Degree(u)) / float64(n-1)
	}
	return out
}

// InDegree returns in-degree centrality normalized by (n-1).
func InDegree(g *graph.Digraph) []float64 {
	n := g.NumNodes()
	out := make([]float64, n)
	if n <= 1 {
		return out
	}
	for u := 0; u < n; u++ {
		out[u] = float64(g.InDegree(u)) / float64(n-1)
	}
	return out
}

// Options configures iterative eigensolvers.
type Options struct {
	MaxIter int     // power-iteration cap (default 200)
	Tol     float64 // L1 convergence tolerance (default 1e-10)
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	return o
}

// Eigenvector computes eigenvector out-centrality by power iteration on
// the adjacency matrix A: x_{k+1} = A x_k, i.e. a node is central if it
// points at central nodes. Scores are L2-normalized and non-negative.
//
// A small teleport term (1e-4 of uniform mass) is mixed in so the
// iteration converges on graphs that are not strongly connected, which
// CESM variable subgraphs never are; this matches NetworkX's practical
// behaviour with nstart and tolerates sink/source structure.
func Eigenvector(g *graph.Digraph, opt Options) []float64 {
	return eigen(g, opt, false)
}

// EigenvectorIn computes eigenvector in-centrality: x_{k+1} = Aᵀ x_k, so
// a node is central if central nodes point at it — the "information
// sink" orientation the paper samples (§5.3).
func EigenvectorIn(g *graph.Digraph, opt Options) []float64 {
	return eigen(g, opt, true)
}

func eigen(g *graph.Digraph, opt Options, in bool) []float64 {
	opt = opt.withDefaults()
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	x := make([]float64, n)
	next := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	const teleport = 1e-4
	for iter := 0; iter < opt.MaxIter; iter++ {
		uniform := teleport / float64(n)
		for i := range next {
			next[i] = uniform
		}
		for u := 0; u < n; u++ {
			if x[u] == 0 {
				continue
			}
			var nbrs []int32
			if in {
				nbrs = g.Out(u) // contribution flows along edges into targets
			} else {
				nbrs = g.In(u)
			}
			// For in-centrality: score(v) += score(u) for each edge u->v,
			// i.e. iterate out-neighbors of u and credit them.
			for _, v := range nbrs {
				next[v] += x[u]
			}
		}
		norm := l2(next)
		if norm == 0 {
			return next
		}
		var diff float64
		for i := range next {
			next[i] /= norm
			diff += math.Abs(next[i] - x[i])
		}
		x, next = next, x
		if diff < opt.Tol*float64(n) {
			break
		}
	}
	return x
}

func l2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// PageRank computes PageRank with damping factor d (use 0.85 when in
// doubt). Dangling mass is redistributed uniformly.
func PageRank(g *graph.Digraph, d float64, opt Options) []float64 {
	opt = opt.withDefaults()
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	x := make([]float64, n)
	next := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	for iter := 0; iter < opt.MaxIter; iter++ {
		var dangling float64
		for u := 0; u < n; u++ {
			if g.OutDegree(u) == 0 {
				dangling += x[u]
			}
		}
		base := (1-d)/float64(n) + d*dangling/float64(n)
		for i := range next {
			next[i] = base
		}
		for u := 0; u < n; u++ {
			if deg := g.OutDegree(u); deg > 0 {
				share := d * x[u] / float64(deg)
				for _, v := range g.Out(u) {
					next[v] += share
				}
			}
		}
		var diff float64
		for i := range next {
			diff += math.Abs(next[i] - x[i])
		}
		x, next = next, x
		if diff < opt.Tol*float64(n) {
			break
		}
	}
	return x
}

// Betweenness computes Brandes node betweenness centrality on the
// directed graph (unweighted). Scores are raw path counts (not
// normalized).
func Betweenness(g *graph.Digraph) []float64 {
	n := g.NumNodes()
	cb := make([]float64, n)
	// Reusable buffers.
	dist := make([]int, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	preds := make([][]int32, n)
	stack := make([]int32, 0, n)
	queue := make([]int32, 0, n)

	for s := 0; s < n; s++ {
		stack = stack[:0]
		queue = queue[:0]
		for i := 0; i < n; i++ {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		dist[s] = 0
		sigma[s] = 1
		queue = append(queue, int32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			stack = append(stack, v)
			for _, w := range g.Out(int(v)) {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		for i := len(stack) - 1; i >= 0; i-- {
			w := stack[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if int(w) != s {
				cb[w] += delta[w]
			}
		}
	}
	return cb
}
