package centrality

import (
	"math"

	"github.com/climate-rca/rca/internal/graph"
)

// NonBacktracking computes the Hashimoto non-backtracking centrality of
// each node (paper supplement §8.1). The Hashimoto matrix B is the
// adjacency matrix on directed edges:
//
//	B_{(u→v),(w→x)} = δ_{vw} (1 − δ_{ux})
//
// i.e. edge (u→v) links to edge (w→x) when v == w and the walk does not
// immediately backtrack (x != u). The leading eigenvector of B is found
// by power iteration; the centrality of node i is the sum of the
// eigenvector entries of i's outgoing edge states, which for an
// undirected (symmetrized) graph matches the formulation in Martin,
// Zhang & Newman (2014).
//
// Nodes with no incident edges receive centrality 0 — the paper notes
// the Hashimoto centrality "does not provide a rank for all nodes" for
// exactly this reason (the sharp drop in Figure 11).
//
// For in-centrality on a digraph, call on g.Reverse() — mirroring the
// paper's note that in-centrality is computed via the transpose.
func NonBacktracking(g *graph.Digraph, opt Options) []float64 {
	opt = opt.withDefaults()
	n := g.NumNodes()
	scores := make([]float64, n)
	if n == 0 {
		return scores
	}

	// Enumerate directed edges and index them.
	type edge struct{ u, v int32 }
	var edges []edge
	g.Edges(func(u, v int) {
		if u != v {
			edges = append(edges, edge{int32(u), int32(v)})
		}
	})
	m := len(edges)
	if m == 0 {
		return scores
	}
	// outEdges[v] lists edge indices whose source is v, so successors of
	// edge (u→v) are outEdges[v] minus any edge returning to u.
	outEdges := make([][]int32, n)
	for i, e := range edges {
		outEdges[e.u] = append(outEdges[e.u], int32(i))
	}

	x := make([]float64, m)
	next := make([]float64, m)
	for i := range x {
		x[i] = 1 / float64(m)
	}
	for iter := 0; iter < opt.MaxIter; iter++ {
		for i := range next {
			next[i] = 0
		}
		for i, e := range edges {
			xi := x[i]
			if xi == 0 {
				continue
			}
			for _, j := range outEdges[e.v] {
				if edges[j].v == e.u {
					continue // backtracking step forbidden
				}
				next[j] += xi
			}
		}
		norm := l2(next)
		if norm == 0 {
			// Graph is a tree/forest in the non-backtracking sense; all
			// walks die. Fall back to zero scores (matches the rank gap
			// in Figure 11).
			return scores
		}
		var diff float64
		for i := range next {
			next[i] /= norm
			diff += math.Abs(next[i] - x[i])
		}
		x, next = next, x
		if diff < opt.Tol*float64(m) {
			break
		}
	}
	for i, e := range edges {
		scores[e.u] += x[i]
	}
	return scores
}
