package centrality

import (
	"math/rand"
	"testing"

	"github.com/climate-rca/rca/internal/graph"
)

func benchGraph(n, m int) *graph.Digraph {
	rng := rand.New(rand.NewSource(9))
	g := graph.New(n)
	g.AddNodes(n)
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

func BenchmarkEigenvectorIn(b *testing.B) {
	g := benchGraph(4000, 9000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EigenvectorIn(g, Options{})
	}
}

func BenchmarkPageRank(b *testing.B) {
	g := benchGraph(4000, 9000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PageRank(g, 0.85, Options{})
	}
}

func BenchmarkNonBacktracking(b *testing.B) {
	g := benchGraph(1000, 3000).Undirected()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NonBacktracking(g, Options{})
	}
}

func BenchmarkBetweenness(b *testing.B) {
	g := benchGraph(300, 900)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Betweenness(g)
	}
}
