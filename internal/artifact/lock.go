package artifact

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// lock acquires the named store-wide lock file (O_CREATE|O_EXCL, so
// exactly one process holds it) and returns its release function.
// While another process holds the lock, acquisition polls; a lock
// older than the stale timeout is presumed orphaned by a crashed
// holder and stolen. ctx cancels the wait. While the store is
// degraded, lock files give way to in-process locks: cross-process
// exclusion is lost but deterministic content-addressed builds make
// duplication benign.
func (s *Store) lock(ctx context.Context, name string) (func(), error) {
	if s.brk.degraded() {
		return s.mlocks.acquire(ctx, name, s.lockPoll)
	}
	path := filepath.Join(s.dir, "locks", name+".lock")
	content := []byte(fmt.Sprintf("%d\n", os.Getpid()))
	for {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			_, _ = f.Write(content)
			_ = f.Close()
			return func() { _ = os.Remove(path) }, nil
		}
		if !os.IsExist(err) {
			// The disk is refusing lock files; count it against the
			// breaker and fall back to in-process exclusion.
			s.brk.failure()
			return s.mlocks.acquire(ctx, name, s.lockPoll)
		}
		// Held elsewhere. Steal it if the holder looks dead.
		if fi, err := os.Stat(path); err == nil && time.Since(fi.ModTime()) > s.lockStale {
			if os.Remove(path) == nil {
				s.steals.Add(1)
			}
			continue
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(s.lockPoll):
		}
	}
}

// Lock exposes the store's named-lock primitive for coordination
// beyond GetOrBuild — rcad uses it to lease scenarios so two workers
// sharing a store never run the same investigation concurrently.
// Names are sanitized by hashing at the call sites; callers pass
// path-safe strings.
func (s *Store) Lock(ctx context.Context, name string) (release func(), err error) {
	return s.lock(ctx, name)
}

// TryLock attempts a non-blocking acquisition of the named lock.
func (s *Store) TryLock(name string) (release func(), ok bool) {
	if s.brk.degraded() {
		return s.mlocks.tryAcquire(name)
	}
	path := filepath.Join(s.dir, "locks", name+".lock")
	if fi, err := os.Stat(path); err == nil && time.Since(fi.ModTime()) > s.lockStale {
		if os.Remove(path) == nil {
			s.steals.Add(1)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if !os.IsExist(err) {
			s.brk.failure()
			return s.mlocks.tryAcquire(name)
		}
		return nil, false
	}
	_, _ = fmt.Fprintf(f, "%d\n", os.Getpid())
	_ = f.Close()
	return func() { _ = os.Remove(path) }, true
}
