package artifact

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/climate-rca/rca/internal/fault"
)

// plane installs a global fault plane for the test and tears it down.
func plane(t *testing.T, spec string, seed uint64) *fault.Plane {
	t.Helper()
	p, err := fault.Parse(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	fault.SetGlobal(p)
	t.Cleanup(func() { fault.SetGlobal(nil) })
	return p
}

// TestBreakerTripAndRecover pins the circuit-breaker contract: K
// consecutive put failures trip the store into degraded mode (puts and
// gets served from the in-memory overlay without errors), and once the
// disk recovers a half-open probe restores write-through.
func TestBreakerTripAndRecover(t *testing.T) {
	s := openTest(t, WithBreaker(3, 30*time.Millisecond))
	plane(t, "artifact.put:eio", 1)

	for i := 0; i < 3; i++ {
		if err := s.Put(ClassCorpus, "key", []byte("payload")); err == nil {
			t.Fatalf("put %d succeeded under a 100%% eio plane", i)
		}
	}
	if !s.Degraded() {
		t.Fatal("3 consecutive failures did not trip a threshold-3 breaker")
	}
	if got := s.Stats().Trips; got != 1 {
		t.Fatalf("Trips = %d; want 1", got)
	}

	// While degraded (and before the cooldown's probe window), puts are
	// error-free pass-throughs to the overlay and gets serve from it.
	if err := s.Put(ClassCorpus, "mem-only", []byte("kept in memory")); err != nil {
		t.Fatalf("degraded put errored: %v", err)
	}
	got, ok := s.Get(ClassCorpus, "mem-only")
	if !ok || !bytes.Equal(got, []byte("kept in memory")) {
		t.Fatalf("degraded get = %q, %v; want the overlay payload", got, ok)
	}
	// The earlier failed puts also parked their payloads in the overlay.
	if got, ok := s.Get(ClassCorpus, "key"); !ok || !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("failed put's payload not recoverable from overlay: %q, %v", got, ok)
	}

	// Heal the disk and wait out the cooldown: the next put wins the
	// half-open probe, succeeds, and closes the breaker.
	fault.SetGlobal(nil)
	time.Sleep(40 * time.Millisecond)
	if err := s.Put(ClassCorpus, "healed", []byte("back on disk")); err != nil {
		t.Fatalf("probe put errored: %v", err)
	}
	if s.Degraded() {
		t.Fatal("successful probe did not close the breaker")
	}
	a := addr(ClassCorpus, "healed")
	if _, err := os.Stat(s.blobPath(ClassCorpus, a)); err != nil {
		t.Fatalf("post-recovery blob not on disk: %v", err)
	}
}

// TestDegradedOpenUnusableDir: a store whose root cannot be created
// (a regular file blocks the path — chmod tricks don't work for root)
// opens pre-tripped instead of failing, and still serves puts/gets and
// locks from memory.
func TestDegradedOpenUnusableDir(t *testing.T) {
	base := t.TempDir()
	blocker := filepath.Join(base, "blocker")
	if err := os.WriteFile(blocker, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(filepath.Join(blocker, "store"))
	if err != nil {
		t.Fatalf("Open with unusable root errored: %v", err)
	}
	if !s.Degraded() {
		t.Fatal("store with unusable root opened healthy")
	}
	if err := s.Put(ClassOutcome, "k", []byte("v")); err != nil {
		t.Fatalf("degraded put: %v", err)
	}
	if got, ok := s.Get(ClassOutcome, "k"); !ok || !bytes.Equal(got, []byte("v")) {
		t.Fatalf("degraded get = %q, %v", got, ok)
	}
	release, ok := s.TryLock("build-x")
	if !ok {
		t.Fatal("degraded TryLock failed")
	}
	if _, ok := s.TryLock("build-x"); ok {
		t.Fatal("degraded TryLock double-acquired")
	}
	release()
}

// TestQueueRetryBackoffDLQ drives one job through the full retry
// lifecycle: claim (attempt 1) → Fail → invisible during backoff →
// claim (attempt 2) → Fail at budget → dead letter with the cause,
// attempts, and original payload preserved.
func TestQueueRetryBackoffDLQ(t *testing.T) {
	s := openTest(t)
	q, err := s.Queue()
	if err != nil {
		t.Fatal(err)
	}
	q.MaxAttempts = 2
	q.BackoffBase = 20 * time.Millisecond
	payload := []byte("job body")
	if err := q.Enqueue("job1", "aff", payload); err != nil {
		t.Fatal(err)
	}

	c, ok, err := q.Claim("w1", nil)
	if err != nil || !ok {
		t.Fatalf("first claim: ok=%v err=%v", ok, err)
	}
	if c.Attempt != 1 {
		t.Fatalf("first claim Attempt = %d; want 1", c.Attempt)
	}
	dead, err := c.Fail("transient wobble")
	if err != nil || dead {
		t.Fatalf("first Fail: dead=%v err=%v; want retryable", dead, err)
	}

	// Backing off: the job must be invisible to claimers until the
	// deadline passes (base 20ms + jitter < 40ms).
	if _, ok, _ := q.Claim("w1", nil); ok {
		t.Fatal("claimed a job inside its backoff window")
	}
	deadline := time.Now().Add(time.Second)
	var c2 *Claimed
	for time.Now().Before(deadline) {
		c2, ok, err = q.Claim("w1", nil)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c2 == nil {
		t.Fatal("job never became claimable after backoff")
	}
	if c2.Attempt != 2 {
		t.Fatalf("second claim Attempt = %d; want 2", c2.Attempt)
	}
	dead, err = c2.Fail("still broken")
	if err != nil || !dead {
		t.Fatalf("final Fail: dead=%v err=%v; want dead letter", dead, err)
	}

	fj, ok := q.Failed("job1")
	if !ok {
		t.Fatal("dead-lettered job has no failure record")
	}
	if fj.Error != "still broken" || fj.Attempts != 2 || !bytes.Equal(fj.Payload, payload) {
		t.Fatalf("failure record = %+v; want cause/attempts/payload preserved", fj)
	}
	if fj.At.IsZero() {
		t.Fatal("failure record missing timestamp")
	}
	if got := q.FailedCount(); got != 1 {
		t.Fatalf("FailedCount = %d; want 1", got)
	}
	if got := q.Pending(); got != 0 {
		t.Fatalf("Pending = %d after dead-letter; want 0", got)
	}
	// Terminal: re-enqueueing the same id must not resurrect it.
	if err := q.Enqueue("job1", "aff", payload); err != nil {
		t.Fatal(err)
	}
	if got := q.Pending(); got != 0 {
		t.Fatalf("dead-lettered job resurrected by Enqueue (pending=%d)", got)
	}
}

// TestQueueRejectDeadLettersImmediately: permanent failures skip the
// retry budget entirely.
func TestQueueRejectDeadLettersImmediately(t *testing.T) {
	s := openTest(t)
	q, err := s.Queue()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue("poison", "aff", []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	c, ok, err := q.Claim("w1", nil)
	if err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	if err := c.Reject("malformed payload"); err != nil {
		t.Fatal(err)
	}
	fj, ok := q.Failed("poison")
	if !ok || fj.Error != "malformed payload" {
		t.Fatalf("Failed = %+v, %v; want immediate dead letter", fj, ok)
	}
	if got := q.Pending(); got != 0 {
		t.Fatalf("Pending = %d; want 0", got)
	}
}

// TestQueueCrashLoopDeadLetters simulates a poison pill that never
// fails cleanly: each claim's lease is dropped by a "crash" (release
// without Done/Fail). Attempts are charged at claim, so after the
// budget the next claimer dead-letters the job instead of running it.
func TestQueueCrashLoopDeadLetters(t *testing.T) {
	s := openTest(t, WithLockStale(time.Nanosecond)) // leases instantly stale
	q, err := s.Queue()
	if err != nil {
		t.Fatal(err)
	}
	q.MaxAttempts = 2
	q.BackoffBase = time.Millisecond
	if err := q.Enqueue("pill", "aff", []byte("kills workers")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		c, ok, err := q.Claim("w1", nil)
		if err != nil || !ok {
			t.Fatalf("claim %d: ok=%v err=%v", i, ok, err)
		}
		c.Release() // worker "crashed"; attempt already charged
	}
	// Budget exhausted with no clean Fail: the next claim sweep must
	// dead-letter the job rather than hand it out again.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		c, ok, err := q.Claim("w1", nil)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("claimed exhausted job on attempt %d", c.Attempt)
		}
		if _, failed := q.Failed("pill"); failed {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	fj, ok := q.Failed("pill")
	if !ok {
		t.Fatal("crash-looping job never dead-lettered")
	}
	if fj.Attempts != 2 {
		t.Fatalf("dead letter attempts = %d; want 2", fj.Attempts)
	}
}

// TestQueueLeaseFaultPoint: an injected lease failure skips the job
// for that sweep without corrupting queue state.
func TestQueueLeaseFaultPoint(t *testing.T) {
	s := openTest(t)
	q, err := s.Queue()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue("j", "aff", []byte("body")); err != nil {
		t.Fatal(err)
	}
	plane(t, "queue.lease:eio@times=1", 1)
	if _, ok, err := q.Claim("w1", nil); err != nil || ok {
		t.Fatalf("claim under lease fault: ok=%v err=%v; want quiet skip", ok, err)
	}
	c, ok, err := q.Claim("w1", nil)
	if err != nil || !ok {
		t.Fatalf("claim after fault budget: ok=%v err=%v", ok, err)
	}
	if err := c.Done([]byte("result")); err != nil {
		t.Fatal(err)
	}
	if !q.IsDone("j") {
		t.Fatal("job not done")
	}
}

// TestQueueDoneFaultPoint: an injected done failure leaves the job
// pending (lease released) so another worker re-runs it; the retry
// then completes.
func TestQueueDoneFaultPoint(t *testing.T) {
	s := openTest(t)
	q, err := s.Queue()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue("j", "aff", []byte("body")); err != nil {
		t.Fatal(err)
	}
	plane(t, "queue.done:eio@times=1", 1)
	c, ok, err := q.Claim("w1", nil)
	if err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	if err := c.Done([]byte("result")); !fault.IsInjected(err) {
		t.Fatalf("Done under fault = %v; want injected error", err)
	}
	if q.IsDone("j") {
		t.Fatal("done marker written despite injected failure")
	}
	c2, ok, err := q.Claim("w2", nil)
	if err != nil || !ok {
		t.Fatalf("re-claim: ok=%v err=%v", ok, err)
	}
	if err := c2.Done([]byte("result")); err != nil {
		t.Fatal(err)
	}
	result, ok := q.Result("j")
	if !ok || !bytes.Equal(result, []byte("result")) {
		t.Fatalf("Result = %q, %v", result, ok)
	}
}

// TestGetCorruptionFaultHealsByRebuild: a corrupt-on-read fault makes
// the integrity check delete the blob; the next GetOrBuild rebuilds.
func TestGetCorruptionFaultHealsByRebuild(t *testing.T) {
	s := openTest(t)
	if err := s.Put(ClassProgram, "p", []byte("compiled bytes")); err != nil {
		t.Fatal(err)
	}
	plane(t, "artifact.get:corrupt@times=1", 3)
	if _, ok := s.Get(ClassProgram, "p"); ok {
		t.Fatal("tampered read reported a hit")
	}
	a := addr(ClassProgram, "p")
	if _, err := os.Stat(s.blobPath(ClassProgram, a)); !os.IsNotExist(err) {
		t.Fatalf("corrupt blob not deleted: %v", err)
	}
	builds := 0
	got, built, err := s.GetOrBuild(context.Background(), ClassProgram, "p", func() ([]byte, error) {
		builds++
		return []byte("compiled bytes"), nil
	})
	if err != nil || !built || builds != 1 || !bytes.Equal(got, []byte("compiled bytes")) {
		t.Fatalf("rebuild after corruption: got=%q built=%v builds=%d err=%v", got, built, builds, err)
	}
}

// TestBackoffZeroValueQueueGrows is the regression test for the
// zero-value Queue{} backoff bug: with no BackoffMax configured, the
// doubling loop's `d < q.BackoffMax` guard was false from the first
// iteration, so every retry waited only the base delay. A directly
// constructed Queue must now grow exponentially up to the default cap.
func TestBackoffZeroValueQueueGrows(t *testing.T) {
	q := &Queue{} // deliberately NOT via NewQueue: no defaults applied
	jitterless := func(attempt int) time.Duration {
		d := q.backoff("job-x", attempt)
		// Strip the deterministic jitter (always < base).
		return d - d%DefaultBackoffBase
	}
	prev := jitterless(1)
	if prev != DefaultBackoffBase {
		t.Fatalf("attempt 1 backoff = %v, want %v", prev, DefaultBackoffBase)
	}
	for attempt := 2; attempt <= 7; attempt++ {
		d := jitterless(attempt)
		if d != 2*prev {
			t.Fatalf("attempt %d backoff = %v, want %v (exponential growth)", attempt, d, 2*prev)
		}
		prev = d
	}
	// Far past the doubling range the delay must cap at the default max.
	if d := jitterless(40); d != DefaultBackoffMax {
		t.Fatalf("attempt 40 backoff = %v, want capped %v", d, DefaultBackoffMax)
	}
}

// TestBackoffHelperDefaults pins the shared helper's contract: both
// knobs default when non-positive, the cap binds, and the jitter is a
// deterministic pure function of (id, attempt).
func TestBackoffHelperDefaults(t *testing.T) {
	if a, b := Backoff("id", 3, 0, 0), Backoff("id", 3, DefaultBackoffBase, DefaultBackoffMax); a != b {
		t.Fatalf("zero knobs %v != explicit defaults %v", a, b)
	}
	base, max := 100*time.Millisecond, 300*time.Millisecond
	d := Backoff("id", 10, base, max)
	if d < max || d >= max+base {
		t.Fatalf("capped delay %v outside [%v, %v)", d, max, max+base)
	}
	if Backoff("id", 5, base, max) != Backoff("id", 5, base, max) {
		t.Fatal("jitter is not deterministic")
	}
	if Backoff("a", 5, base, max) == Backoff("b", 5, base, max) {
		t.Fatal("jitter ignores the id")
	}
}
