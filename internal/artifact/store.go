// Package artifact is the content-addressed on-disk artifact store
// that makes the pipeline's layered cache fingerprints (sourceKey ⊂
// buildKey ⊂ scenarioKey) durable identities instead of in-process map
// keys. Compiled bytecode programs, generated corpora, compiled
// metagraphs and finished outcomes are written once under
// sha-256-derived paths and shared by every process pointed at the
// same directory: a restarted rcad warm-starts from disk, and N rcad
// workers deduplicate builds across process boundaries through
// O_EXCL lock files (cross-process singleflight).
//
// Layout under the store root:
//
//	objects/<class>/<hh>/<hex64>   content blobs (hh = first address byte)
//	locks/<hex64>.lock             build locks (GetOrBuild singleflight)
//	queue/...                      shared work queue (see queue.go)
//
// Every blob carries a header with a payload digest; reads verify it
// and delete corrupt blobs, so torn writes or disk damage degrade to a
// cache miss and a clean rebuild, never an error surfaced to the
// pipeline. Writes are tmp+rename atomic. The store is size-capped:
// puts evict least-recently-accessed blobs (mtime is bumped to the
// access time on every hit) until the total is back under the cap.
//
// A write-path circuit breaker guards against a disk that stops
// cooperating entirely: after K consecutive I/O failures the store
// trips into degraded mode — puts land in a bounded in-memory overlay,
// gets fall back to it, and lock-file coordination is replaced by
// in-process locks — so the pipeline keeps producing (bit-identical)
// answers on a dead disk. Half-open probes retry the disk every
// cooldown interval and restore write-through when it recovers. The
// filesystem ops are threaded through the internal/fault plane
// (points "artifact.put" / "artifact.get"), making all of this
// testable on demand from a seeded chaos plan.
package artifact

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/climate-rca/rca/internal/fault"
)

// Artifact classes. The class is folded into the content address, so
// the same key never collides across classes.
const (
	// ClassCorpus stores generated+patched source trees per sourceKey.
	ClassCorpus = "corpus"
	// ClassProgram stores compiled bytecode programs per sourceKey.
	ClassProgram = "program"
	// ClassCompiled stores coverage-filtered metagraphs per buildKey.
	ClassCompiled = "compiled"
	// ClassOutcome stores finished investigation outcomes per scenarioKey.
	ClassOutcome = "outcome"
	// ClassVerdict stores UF-ECT failure rates per buildKey — the unit
	// of work the scenario search's branch-and-bound nodes share.
	ClassVerdict = "verdict"
	// ClassIncumbent stores a search's best-known solution per search
	// fingerprint, so concurrent workers prune against the global best.
	ClassIncumbent = "incumbent"
)

// blobMagic versions the on-disk blob framing (not the per-class
// payload codecs, which carry their own versions).
var blobMagic = []byte("RCAART1\n")

const digestLen = sha256.Size

// DefaultMaxBytes caps the store at 512 MiB unless overridden.
const DefaultMaxBytes int64 = 512 << 20

// DefaultLockStale is how old a lock file must be before another
// process may steal it (crashed-holder recovery).
const DefaultLockStale = 2 * time.Minute

// Stats is a snapshot of store counters. Hits/Misses/Evictions count
// since Open; Bytes is the current on-disk payload total. Degraded
// reports the circuit breaker's current state and Trips how many
// times it has opened since Open.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Puts      uint64
	Builds    uint64
	Steals    uint64
	Bytes     int64
	Degraded  bool
	Trips     uint64
}

// Store is a content-addressed artifact store rooted at a directory.
// One directory may be shared by any number of Store handles across
// processes. The zero value is not usable; call Open.
type Store struct {
	dir       string
	maxBytes  int64
	lockStale time.Duration
	lockPoll  time.Duration

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	puts      atomic.Uint64
	builds    atomic.Uint64
	steals    atomic.Uint64
	bytes     atomic.Int64

	evictMu sync.Mutex // serializes in-process eviction scans

	// Degraded-mode machinery: the write-path circuit breaker, the
	// in-memory blob overlay it fails over to, and in-process locks
	// replacing lock files while the disk is refusing writes.
	brk    breaker
	mem    memCache
	mlocks memLocks
}

// Option configures Open.
type Option func(*Store)

// WithMaxBytes caps the total payload bytes kept on disk; puts evict
// least-recently-accessed blobs beyond it. n <= 0 keeps the default.
func WithMaxBytes(n int64) Option {
	return func(s *Store) {
		if n > 0 {
			s.maxBytes = n
		}
	}
}

// WithLockStale sets the age after which another process may steal a
// build lock (the holder is presumed dead). d <= 0 keeps the default.
func WithLockStale(d time.Duration) Option {
	return func(s *Store) {
		if d > 0 {
			s.lockStale = d
		}
	}
}

// WithBreaker tunes the write-path circuit breaker: threshold is the
// consecutive-failure count that trips the store into degraded mode,
// cooldown the interval between half-open disk probes. Non-positive
// values keep the defaults.
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(s *Store) {
		if threshold > 0 {
			s.brk.threshold = int32(threshold)
		}
		if cooldown > 0 {
			s.brk.cooldown = cooldown
		}
	}
}

// Open opens (creating if needed) a store rooted at dir. An
// uncreatable root — unwritable parent, a file where the directory
// should be — does not fail: the store opens pre-tripped into
// degraded mode (in-memory overlay, in-process locks) and half-open
// probes restore disk persistence if the path becomes usable, so a
// daemon with a broken store directory serves requests instead of
// refusing to boot.
func Open(dir string, opts ...Option) (*Store, error) {
	s := &Store{
		dir:       dir,
		maxBytes:  DefaultMaxBytes,
		lockStale: DefaultLockStale,
		lockPoll:  5 * time.Millisecond,
	}
	s.brk.threshold = DefaultBreakerThreshold
	s.brk.cooldown = DefaultBreakerCooldown
	for _, o := range opts {
		o(s)
	}
	for _, sub := range []string{"objects", "locks"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			s.brk.trip()
			return s, nil
		}
	}
	s.bytes.Store(s.scanBytes())
	return s, nil
}

// Degraded reports whether the store's circuit breaker is open (disk
// bypassed, in-memory pass-through serving).
func (s *Store) Degraded() bool { return s.brk.degraded() }

// Dir returns the store root.
func (s *Store) Dir() string { return s.dir }

// Stats returns a counter snapshot.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Evictions: s.evictions.Load(),
		Puts:      s.puts.Load(),
		Builds:    s.builds.Load(),
		Steals:    s.steals.Load(),
		Bytes:     s.bytes.Load(),
		Degraded:  s.brk.degraded(),
		Trips:     s.brk.trips.Load(),
	}
}

// addr derives the content address of (class, key).
func addr(class, key string) string {
	h := sha256.New()
	h.Write([]byte(class))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return hex.EncodeToString(h.Sum(nil))
}

func (s *Store) blobPath(class, a string) string {
	return filepath.Join(s.dir, "objects", class, a[:2], a)
}

// Get returns the payload stored for (class, key), or ok=false on a
// miss. Corrupt blobs are deleted and reported as misses; hits bump
// the blob's access time for LRU eviction. The degraded-mode overlay
// backstops both failure modes: a blob the disk cannot produce (read
// error or integrity failure) is still a hit if a recent Put parked
// it in memory.
func (s *Store) Get(class, key string) ([]byte, bool) {
	a := addr(class, key)
	path := s.blobPath(class, a)
	raw, err := os.ReadFile(path)
	if err == nil {
		// Chaos plane: a fired eio rule turns the read into an I/O
		// error; a corrupt rule hands back tampered bytes for the
		// integrity check below to catch.
		raw, err = fault.HookData(context.Background(), fault.PointArtifactGet, raw)
	}
	if err != nil {
		return s.memGet(a)
	}
	payload, err := unframe(raw)
	if err != nil {
		// Integrity failure: drop the blob so the next writer rebuilds
		// cleanly, and report a plain miss (or the overlay's copy).
		if rmErr := os.Remove(path); rmErr == nil {
			s.bytes.Add(-int64(len(raw)))
		}
		return s.memGet(a)
	}
	now := time.Now()
	_ = os.Chtimes(path, now, now) // best-effort LRU access stamp
	s.hits.Add(1)
	return payload, true
}

// memGet finishes a failed disk read against the in-memory overlay.
func (s *Store) memGet(a string) ([]byte, bool) {
	if data, ok := s.mem.get(a); ok {
		s.hits.Add(1)
		return data, true
	}
	s.misses.Add(1)
	return nil, false
}

// Put stores payload under (class, key) atomically (tmp+rename) and
// evicts past the size cap. Concurrent puts of the same content are
// harmless: last rename wins with identical bytes. Disk failures
// never lose the artifact: the payload lands in the in-memory overlay
// and feeds the circuit breaker, which after enough consecutive
// failures stops touching the disk entirely (half-open probes restore
// write-through when it recovers). The returned error reports disk
// persistence only — callers already treat Put as best-effort.
func (s *Store) Put(class, key string, payload []byte) error {
	a := addr(class, key)
	if !s.brk.allow() {
		s.mem.put(a, payload)
		s.puts.Add(1)
		return nil
	}
	err := s.diskPut(class, a, frame(payload))
	if err != nil {
		s.brk.failure()
		s.mem.put(a, payload)
		s.puts.Add(1)
		return err
	}
	s.brk.success()
	s.puts.Add(1)
	s.evict()
	return nil
}

// diskPut writes a framed blob via tmp+rename, threading the bytes
// through the artifact.put fault point (an eio rule fails the write,
// a corrupt rule tears it).
func (s *Store) diskPut(class, a string, framed []byte) error {
	framed, ferr := fault.HookData(context.Background(), fault.PointArtifactPut, framed)
	if ferr != nil {
		return fmt.Errorf("artifact: put %s: %w", class, ferr)
	}
	path := s.blobPath(class, a)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("artifact: put %s: %w", class, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("artifact: put %s: %w", class, err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(framed)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("artifact: put %s: write %v close %v", class, werr, cerr)
	}
	// If the blob already exists (another process won the build race),
	// the rename replaces identical content; adjust byte accounting by
	// the delta only.
	var existed int64
	if fi, err := os.Stat(path); err == nil {
		existed = fi.Size()
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("artifact: put %s: %w", class, err)
	}
	s.bytes.Add(int64(len(framed)) - existed)
	return nil
}

// GetOrBuild returns the payload for (class, key), building and
// storing it at most once across every process sharing the store: a
// miss takes the key's build lock, re-checks the store (another holder
// may have finished first), and only then runs build. The returned
// built flag reports whether THIS call ran the builder. Lock-file
// acquisition respects ctx; a crashed holder's lock is stolen after
// the stale timeout.
func (s *Store) GetOrBuild(ctx context.Context, class, key string, build func() ([]byte, error)) ([]byte, bool, error) {
	if data, ok := s.Get(class, key); ok {
		return data, false, nil
	}
	unlock, err := s.lock(ctx, addr(class, key))
	if err != nil {
		if ctx.Err() != nil {
			return nil, false, err
		}
		// Locking failed for a reason other than cancellation (disk
		// refusing lock files). Cross-process singleflight is nice to
		// have, not load-bearing: builds are deterministic and
		// content-addressed, so proceed without the lock and accept a
		// possible duplicated build over a refused request.
		unlock = func() {}
	}
	defer unlock()
	if data, ok := s.Get(class, key); ok {
		return data, false, nil
	}
	data, err := build()
	if err != nil {
		return nil, false, err
	}
	s.builds.Add(1)
	if err := s.Put(class, key, data); err != nil {
		// The artifact is valid even if persisting it failed (disk
		// full, permissions): serve it, surface nothing.
		return data, true, nil
	}
	return data, true, nil
}

// frame wraps a payload with the store's integrity header.
func frame(payload []byte) []byte {
	out := make([]byte, 0, len(blobMagic)+digestLen+len(payload))
	out = append(out, blobMagic...)
	sum := sha256.Sum256(payload)
	out = append(out, sum[:]...)
	return append(out, payload...)
}

// unframe verifies and strips the integrity header.
func unframe(raw []byte) ([]byte, error) {
	if len(raw) < len(blobMagic)+digestLen || !bytes.Equal(raw[:len(blobMagic)], blobMagic) {
		return nil, errors.New("artifact: bad blob header")
	}
	want := raw[len(blobMagic) : len(blobMagic)+digestLen]
	payload := raw[len(blobMagic)+digestLen:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], want) {
		return nil, errors.New("artifact: payload digest mismatch")
	}
	return payload, nil
}

// scanBytes totals the on-disk blob sizes at Open.
func (s *Store) scanBytes() int64 {
	var total int64
	root := filepath.Join(s.dir, "objects")
	_ = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if fi, err := d.Info(); err == nil {
			total += fi.Size()
		}
		return nil
	})
	return total
}

// evict removes least-recently-accessed blobs until the store is back
// under its byte cap. Only one in-process evictor runs at a time;
// concurrent processes may race to delete the same blobs, which is
// benign (Remove of a missing file is skipped in accounting).
func (s *Store) evict() {
	if s.bytes.Load() <= s.maxBytes {
		return
	}
	s.evictMu.Lock()
	defer s.evictMu.Unlock()
	if s.bytes.Load() <= s.maxBytes {
		return
	}
	type blob struct {
		path  string
		size  int64
		atime time.Time
	}
	var blobs []blob
	var total int64
	root := filepath.Join(s.dir, "objects")
	_ = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		fi, err := d.Info()
		if err != nil {
			return nil
		}
		blobs = append(blobs, blob{path: path, size: fi.Size(), atime: fi.ModTime()})
		total += fi.Size()
		return nil
	})
	sort.Slice(blobs, func(i, j int) bool { return blobs[i].atime.Before(blobs[j].atime) })
	// Re-anchor accounting to the scan (handles external deletes).
	s.bytes.Store(total)
	for _, b := range blobs {
		if s.bytes.Load() <= s.maxBytes {
			break
		}
		if err := os.Remove(b.path); err == nil {
			s.bytes.Add(-b.size)
			s.evictions.Add(1)
		}
	}
}
