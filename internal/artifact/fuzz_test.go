package artifact

import (
	"bytes"
	"testing"

	"github.com/climate-rca/rca/internal/binenc"
)

// FuzzArtifactCodec exercises the two codecs every blob passes
// through: the integrity frame (frame/unframe) and the queue's
// pending-record encoding (binenc String+Raw). Properties:
//
//  1. round trip: unframe(frame(p)) == p for any payload;
//  2. robustness: unframe and the pending-record reader never panic on
//     arbitrary bytes, they return errors;
//  3. no false accepts: corrupting any byte of a framed payload is
//     detected.
//
// Regression seeds live under testdata/fuzz/FuzzArtifactCodec.
func FuzzArtifactCodec(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("payload"))
	f.Add(blobMagic)                   // magic alone: truncated header
	f.Add(frame([]byte("framed")))     // valid blob fed back as input
	f.Add(frame([]byte{}))             // minimal valid blob
	f.Add(bytes.Repeat([]byte{0}, 41)) // header-sized garbage
	f.Fuzz(func(t *testing.T, data []byte) {
		// Round trip.
		framed := frame(data)
		back, err := unframe(framed)
		if err != nil {
			t.Fatalf("unframe(frame(p)) failed: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("round trip changed payload: %q -> %q", data, back)
		}
		// Tamper detection: flipping any single byte must be caught.
		if len(framed) > 0 {
			i := len(data) % len(framed)
			tampered := append([]byte(nil), framed...)
			tampered[i] ^= 0x01
			if got, err := unframe(tampered); err == nil && !bytes.Equal(got, data) {
				t.Fatalf("tampered blob (byte %d) accepted with altered payload", i)
			}
		}
		// Robustness: arbitrary bytes as a framed blob error cleanly.
		if payload, err := unframe(data); err == nil {
			// Rare but legal: data happened to be a valid frame. Then it
			// must round trip through frame again bit-exactly.
			if !bytes.Equal(frame(payload), data) {
				t.Fatal("valid frame did not re-encode identically")
			}
		}
		// Queue pending-record codec: encode, decode, compare; then
		// decode the raw fuzz bytes, which must error or parse, never
		// panic.
		w := binenc.NewWriter(len(data) + 16)
		w.String(string(data))
		w.Raw(data)
		r := binenc.NewReader(w.Bytes())
		aff := r.String()
		payload := r.Raw()
		if err := r.Done(); err != nil {
			t.Fatalf("pending record round trip: %v", err)
		}
		if aff != string(data) || !bytes.Equal(payload, data) {
			t.Fatal("pending record round trip changed fields")
		}
		rr := binenc.NewReader(data)
		_ = rr.String()
		_ = rr.Raw()
		_ = rr.Done()
	})
}
