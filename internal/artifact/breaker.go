package artifact

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultBreakerThreshold is how many consecutive write-path I/O
// failures trip the store into degraded mode.
const DefaultBreakerThreshold = 5

// DefaultBreakerCooldown is how long a tripped store waits between
// half-open probes of the disk.
const DefaultBreakerCooldown = 5 * time.Second

// breaker is the store's write-path circuit breaker. Closed (healthy)
// passes operations through to disk; K consecutive failures open it,
// and while open the store serves from its in-memory overlay instead
// of surfacing errors. Every cooldown interval one caller wins the
// half-open probe slot and retries the real disk op; success closes
// the breaker and restores write-through.
type breaker struct {
	threshold int32
	cooldown  time.Duration

	fails   atomic.Int32
	opened  atomic.Bool
	probeAt atomic.Int64 // unixnano of the next allowed probe
	trips   atomic.Uint64
}

// failure records a write-path I/O error, tripping the breaker at the
// threshold.
func (b *breaker) failure() {
	if b.fails.Add(1) >= b.threshold {
		b.trip()
	}
}

// trip opens the breaker immediately (also used by Open when the
// store directory cannot even be created).
func (b *breaker) trip() {
	if b.opened.CompareAndSwap(false, true) {
		b.trips.Add(1)
		b.probeAt.Store(time.Now().Add(b.cooldown).UnixNano())
	}
}

// success records a healthy disk op, closing the breaker.
func (b *breaker) success() {
	b.fails.Store(0)
	b.opened.Store(false)
}

// degraded reports whether the breaker is open.
func (b *breaker) degraded() bool { return b.opened.Load() }

// allow reports whether the caller may touch the disk: always while
// closed; while open, exactly one caller per cooldown window wins the
// half-open probe (the CAS pushes the window forward so the losers
// stay on the in-memory path).
func (b *breaker) allow() bool {
	if !b.opened.Load() {
		return true
	}
	at := b.probeAt.Load()
	now := time.Now().UnixNano()
	if now < at {
		return false
	}
	return b.probeAt.CompareAndSwap(at, now+int64(b.cooldown))
}

// memCache is the degraded-mode overlay: a bounded in-process
// key→payload map that keeps completed work reachable while the disk
// is refusing writes. Entries evict FIFO past the cap — the overlay
// favors recent artifacts, mirroring the disk store's LRU intent
// without its persistence.
type memCache struct {
	mu    sync.Mutex
	max   int
	m     map[string][]byte
	order []string
}

const memCacheMax = 1024

func (c *memCache) put(key string, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[string][]byte)
		c.max = memCacheMax
	}
	if _, ok := c.m[key]; !ok {
		c.order = append(c.order, key)
	}
	c.m[key] = payload
	for len(c.m) > c.max && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.m, oldest)
	}
}

func (c *memCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	data, ok := c.m[key]
	return data, ok
}

// memLocks is the degraded-mode replacement for lock files: in-process
// named mutexes with the same poll-under-context acquisition shape.
// Cross-process singleflight is lost while degraded — two daemons may
// duplicate a build — but duplicated builds are deterministic and
// content-addressed, so the trade is availability for efficiency,
// never correctness.
type memLocks struct {
	mu   sync.Mutex
	held map[string]bool
}

func (l *memLocks) acquire(ctx context.Context, name string, poll time.Duration) (func(), error) {
	for {
		if release, ok := l.tryAcquire(name); ok {
			return release, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(poll):
		}
	}
}

func (l *memLocks) tryAcquire(name string) (func(), bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.held == nil {
		l.held = make(map[string]bool)
	}
	if l.held[name] {
		return nil, false
	}
	l.held[name] = true
	return func() {
		l.mu.Lock()
		delete(l.held, name)
		l.mu.Unlock()
	}, true
}
