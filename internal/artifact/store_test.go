package artifact

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func openTest(t *testing.T, opts ...Option) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTest(t)
	payload := []byte("the artifact body")
	if _, ok := s.Get(ClassCorpus, "k1"); ok {
		t.Fatal("empty store reported a hit")
	}
	if err := s.Put(ClassCorpus, "k1", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(ClassCorpus, "k1")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want the stored payload", got, ok)
	}
	// The class is part of the address: same key, other class misses.
	if _, ok := s.Get(ClassProgram, "k1"); ok {
		t.Fatal("key leaked across classes")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Puts != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 2 misses, 1 put", st)
	}
	if st.Bytes <= int64(len(payload)) {
		t.Fatalf("bytes = %d; want payload plus framing", st.Bytes)
	}
}

func TestReopenSeesBlobsAndBytes(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(ClassOutcome, "fp", []byte("outcome")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get(ClassOutcome, "fp"); !ok || string(got) != "outcome" {
		t.Fatalf("reopened store Get = %q, %v", got, ok)
	}
	if s2.Stats().Bytes != s1.Stats().Bytes {
		t.Fatalf("reopen bytes %d != writer's %d", s2.Stats().Bytes, s1.Stats().Bytes)
	}
}

// TestCorruptBlobFallsBackToRebuild is the integrity acceptance test:
// a flipped payload byte turns the read into a miss, the damaged blob
// is deleted, and GetOrBuild rebuilds cleanly.
func TestCorruptBlobFallsBackToRebuild(t *testing.T) {
	s := openTest(t)
	if err := s.Put(ClassProgram, "k", []byte("valid payload")); err != nil {
		t.Fatal(err)
	}
	path := s.blobPath(ClassProgram, addr(ClassProgram, "k"))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff // corrupt the payload tail
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(ClassProgram, "k"); ok {
		t.Fatal("corrupt blob served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt blob not deleted: %v", err)
	}
	rebuilt := false
	data, built, err := s.GetOrBuild(context.Background(), ClassProgram, "k", func() ([]byte, error) {
		rebuilt = true
		return []byte("rebuilt payload"), nil
	})
	if err != nil || !built || !rebuilt || string(data) != "rebuilt payload" {
		t.Fatalf("GetOrBuild after corruption = %q, built=%v, err=%v", data, built, err)
	}
	if got, ok := s.Get(ClassProgram, "k"); !ok || string(got) != "rebuilt payload" {
		t.Fatalf("rebuilt blob not persisted: %q, %v", got, ok)
	}
}

func TestEvictionDropsLeastRecentlyUsed(t *testing.T) {
	// Each framed blob is 8 (magic) + 32 (digest) + 100 bytes; cap the
	// store at three blobs' worth.
	s := openTest(t, WithMaxBytes(3*140))
	payload := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 3; i++ {
		if err := s.Put(ClassCorpus, fmt.Sprintf("k%d", i), payload); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so LRU order is deterministic.
		path := s.blobPath(ClassCorpus, addr(ClassCorpus, fmt.Sprintf("k%d", i)))
		stamp := time.Now().Add(time.Duration(i-10) * time.Minute)
		if err := os.Chtimes(path, stamp, stamp); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(ClassCorpus, "k3", payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(ClassCorpus, "k0"); ok {
		t.Fatal("oldest blob survived eviction")
	}
	for _, k := range []string{"k1", "k2", "k3"} {
		if _, ok := s.Get(ClassCorpus, k); !ok {
			t.Fatalf("recent blob %s evicted", k)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("stats = %+v; want evictions > 0", st)
	}
	if st.Bytes > 3*140 {
		t.Fatalf("bytes %d still over the cap", st.Bytes)
	}
}

func TestGetOrBuildBuildsOnceUnderConcurrency(t *testing.T) {
	s := openTest(t)
	var builds atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			data, _, err := s.GetOrBuild(context.Background(), ClassCompiled, "shared", func() ([]byte, error) {
				builds.Add(1)
				time.Sleep(10 * time.Millisecond) // widen the race window
				return []byte("built once"), nil
			})
			if err != nil || string(data) != "built once" {
				t.Errorf("GetOrBuild = %q, %v", data, err)
			}
		}()
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("builder ran %d times; want once", n)
	}
}

func TestLockStaleSteal(t *testing.T) {
	s := openTest(t, WithLockStale(50*time.Millisecond))
	// Simulate a crashed holder: a lock file nobody will release.
	name := addr(ClassCompiled, "orphaned")
	path := filepath.Join(s.dir, "locks", name+".lock")
	if err := os.WriteFile(path, []byte("99999"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Minute)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	release, err := s.lock(ctx, name)
	if err != nil {
		t.Fatalf("stale lock not stolen: %v", err)
	}
	release()
}

// TestLockStealCounter pins the steal observability: every path that
// removes an aged lock — blocking lock, TryLock, and the queue's lease
// claim — must bump Stats.Steals exactly once per stolen file.
func TestLockStealCounter(t *testing.T) {
	s := openTest(t, WithLockStale(50*time.Millisecond))
	age := func(path string) {
		t.Helper()
		if err := os.WriteFile(path, []byte("99999\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		old := time.Now().Add(-time.Minute)
		if err := os.Chtimes(path, old, old); err != nil {
			t.Fatal(err)
		}
	}

	// Blocking lock path.
	age(filepath.Join(s.dir, "locks", "dead1.lock"))
	release, err := s.Lock(context.Background(), "dead1")
	if err != nil {
		t.Fatalf("stale lock not stolen: %v", err)
	}
	release()
	if got := s.Stats().Steals; got != 1 {
		t.Fatalf("after blocking steal: Steals = %d; want 1", got)
	}

	// TryLock path.
	age(filepath.Join(s.dir, "locks", "dead2.lock"))
	release, ok := s.TryLock("dead2")
	if !ok {
		t.Fatal("TryLock did not steal the aged lock")
	}
	release()
	if got := s.Stats().Steals; got != 2 {
		t.Fatalf("after TryLock steal: Steals = %d; want 2", got)
	}

	// Queue lease path: an aged lease left by a crashed worker must be
	// stolen when the next worker claims the job.
	q, err := s.Queue()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue("orphan", "build", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	age(filepath.Join(s.dir, "queue", "leases", "orphan.lock"))
	c, ok, err := q.Claim("w1", []string{"w1"})
	if err != nil || !ok {
		t.Fatalf("Claim over aged lease = %v, %v", ok, err)
	}
	c.Release()
	if got := s.Stats().Steals; got != 3 {
		t.Fatalf("after lease steal: Steals = %d; want 3", got)
	}

	// A live (fresh) lock is never counted as stolen.
	release, err = s.Lock(context.Background(), "alive")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.TryLock("alive"); ok {
		t.Fatal("TryLock acquired a held lock")
	}
	release()
	if got := s.Stats().Steals; got != 3 {
		t.Fatalf("live lock counted as steal: Steals = %d; want 3", got)
	}
}

func TestLockWaitsForHolder(t *testing.T) {
	s := openTest(t)
	release, err := s.Lock(context.Background(), "busy")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.TryLock("busy"); ok {
		t.Fatal("TryLock acquired a held lock")
	}
	// A short-deadline waiter gives up; ctx is honored while polling.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := s.Lock(ctx, "busy"); err == nil {
		t.Fatal("Lock succeeded while held")
	}
	release()
	release2, err := s.Lock(context.Background(), "busy")
	if err != nil {
		t.Fatalf("lock not reacquirable after release: %v", err)
	}
	release2()
}

func TestQueueLifecycle(t *testing.T) {
	s := openTest(t)
	q, err := s.Queue()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue("job1", "buildA", []byte("payload1")); err != nil {
		t.Fatal(err)
	}
	// Enqueue is idempotent per id.
	if err := q.Enqueue("job1", "buildA", []byte("payload1")); err != nil {
		t.Fatal(err)
	}
	if n := q.Pending(); n != 1 {
		t.Fatalf("Pending = %d; want one job", n)
	}
	c, ok, err := q.Claim("w1", []string{"w1"})
	if err != nil || !ok {
		t.Fatalf("Claim = %v, %v", ok, err)
	}
	if c.ID != "job1" || c.Affinity != "buildA" || string(c.Payload) != "payload1" {
		t.Fatalf("claimed %+v", c.Job)
	}
	// The job is leased: a second claimer finds nothing.
	if _, ok, _ := q.Claim("w2", []string{"w1", "w2"}); ok {
		t.Fatal("leased job claimed twice")
	}
	if err := c.Done([]byte("result")); err != nil {
		t.Fatal(err)
	}
	if !q.IsDone("job1") {
		t.Fatal("done marker missing")
	}
	if res, ok := q.Result("job1"); !ok || string(res) != "result" {
		t.Fatalf("Result = %q, %v", res, ok)
	}
	// Re-enqueueing a completed job is a no-op.
	if err := q.Enqueue("job1", "buildA", []byte("payload1")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := q.Claim("w1", []string{"w1"}); ok {
		t.Fatal("completed job re-claimed")
	}
}

func TestQueueReleaseRequeues(t *testing.T) {
	s := openTest(t)
	q, err := s.Queue()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue("j", "a", []byte("p")); err != nil {
		t.Fatal(err)
	}
	c, ok, err := q.Claim("w1", []string{"w1"})
	if err != nil || !ok {
		t.Fatalf("Claim = %v, %v", ok, err)
	}
	c.Release()
	c2, ok, err := q.Claim("w1", []string{"w1"})
	if err != nil || !ok {
		t.Fatalf("released job not reclaimable: %v, %v", ok, err)
	}
	if err := c2.Done(nil); err != nil {
		t.Fatal(err)
	}
}

// TestQueueAffinityPreference seeds one job per worker and checks each
// worker claims its own rendezvous assignment first, not enqueue order.
func TestQueueAffinityPreference(t *testing.T) {
	s := openTest(t)
	q, err := s.Queue()
	if err != nil {
		t.Fatal(err)
	}
	peers := []string{"w1", "w2"}
	// Find two affinity keys that hash to different owners.
	var k1, k2 string
	for i := 0; k1 == "" || k2 == ""; i++ {
		k := fmt.Sprintf("build%d", i)
		if Owner(k, peers) == "w1" && k1 == "" {
			k1 = k
		} else if Owner(k, peers) == "w2" {
			k2 = k
		}
	}
	if err := q.Enqueue("forW2", k2, nil); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue("forW1", k1, nil); err != nil {
		t.Fatal(err)
	}
	c, ok, err := q.Claim("w1", peers)
	if err != nil || !ok {
		t.Fatalf("Claim = %v, %v", ok, err)
	}
	if c.ID != "forW1" {
		t.Fatalf("w1 claimed %s; want its own-affinity job first", c.ID)
	}
	c.Release()
	// With its own backlog empty, a worker steals the other's job.
	c2, ok, err := q.Claim("w2", peers)
	if err != nil || !ok {
		t.Fatalf("Claim = %v, %v", ok, err)
	}
	if c2.ID != "forW2" {
		t.Fatalf("w2 claimed %s; want forW2", c2.ID)
	}
	c.Release()
	c2.Release()
}

func TestOwnerRendezvousProperties(t *testing.T) {
	peers := []string{"w1", "w2", "w3"}
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("key%d", i)
		o := Owner(key, peers)
		if o2 := Owner(key, []string{"w3", "w1", "w2"}); o2 != o {
			t.Fatalf("Owner(%q) depends on peer order: %s vs %s", key, o, o2)
		}
		counts[o]++
	}
	for _, p := range peers {
		if counts[p] == 0 {
			t.Fatalf("owner distribution skipped %s entirely: %v", p, counts)
		}
	}
	// Dropping a peer only moves that peer's keys (HRW stability).
	moved := 0
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("key%d", i)
		before := Owner(key, peers)
		after := Owner(key, []string{"w1", "w2"})
		if before != "w3" && before != after {
			t.Fatalf("key %q moved from surviving owner %s to %s", key, before, after)
		}
		if before == "w3" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no keys owned by the dropped peer; test vacuous")
	}
}
