package artifact

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"github.com/climate-rca/rca/internal/binenc"
	"github.com/climate-rca/rca/internal/fault"
)

// Queue is a crash-tolerant work queue shared by every worker process
// pointed at one store directory — the pkggen-style scheduler shape:
// jobs are files, claims are lock-file leases, completion is a marker
// file, and a worker that dies mid-job just lets its lease go stale
// for another worker to steal.
//
// Layout under <store>/queue:
//
//	pending/<id>   job payload (affinity key + body, framed)
//	leases/<id>.lock   held while a worker runs the job
//	done/<id>      completion marker (result bytes, framed)
//	attempts/<id>  retry bookkeeping (attempt count, backoff deadline)
//	failed/<id>    dead-letter record (error, attempts, payload, framed)
//
// Claim orders candidates by consistent-hash affinity: jobs whose
// affinity key rendezvous-hashes to this worker come first, so N
// workers partition the keyspace (same-buildKey jobs land on the same
// worker and share its hot in-process caches) while still stealing
// another worker's backlog when idle.
//
// Jobs retry with exponential backoff and a bounded attempt budget.
// Attempts are counted at claim time, not completion time, so a
// worker that crashes mid-job still burns an attempt — a poison pill
// that kills every worker it touches lands in the dead-letter
// directory after MaxAttempts instead of crash-looping the fleet
// forever. The backoff jitter is a pure function of (id, attempt), so
// chaos runs reproduce byte-for-byte from a seed.
type Queue struct {
	s   *Store
	dir string

	// MaxAttempts is the per-job attempt budget before dead-lettering
	// (counted at claim). BackoffBase/BackoffMax shape the exponential
	// retry delay. All three carry usable defaults from Store.Queue.
	MaxAttempts int
	BackoffBase time.Duration
	BackoffMax  time.Duration
}

// Retry-policy defaults installed by Store.Queue.
const (
	DefaultMaxAttempts = 3
	DefaultBackoffBase = 250 * time.Millisecond
	DefaultBackoffMax  = 30 * time.Second
)

// Queue opens the store's shared work queue.
func (s *Store) Queue() (*Queue, error) {
	q := &Queue{
		s:           s,
		dir:         filepath.Join(s.dir, "queue"),
		MaxAttempts: DefaultMaxAttempts,
		BackoffBase: DefaultBackoffBase,
		BackoffMax:  DefaultBackoffMax,
	}
	for _, sub := range []string{"pending", "leases", "done", "attempts", "failed"} {
		if err := os.MkdirAll(filepath.Join(q.dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("artifact: open queue: %w", err)
		}
	}
	return q, nil
}

// Job is one queued unit of work.
type Job struct {
	ID       string
	Affinity string // consistent-hash routing key (buildKey hash)
	Payload  []byte
}

// Claimed is a leased job; exactly one worker holds it at a time.
// Attempt is this execution's 1-based attempt number (already charged
// against the budget).
type Claimed struct {
	Job
	Attempt int
	q       *Queue
	release func()
}

func jobID(id string) string {
	// IDs come from callers as fingerprint hashes; keep them path-safe
	// defensively.
	return filepath.Base(id)
}

// Enqueue adds a job if no job with the same id is pending or done —
// idempotent, so every worker (or a dispatcher) can enqueue the same
// catalog and the queue dedupes by id.
func (q *Queue) Enqueue(id, affinity string, payload []byte) error {
	id = jobID(id)
	if q.IsDone(id) {
		return nil
	}
	// Dead-lettered ids are terminal: re-enqueueing the same catalog
	// must not resurrect a poison pill.
	if _, failed := q.Failed(id); failed {
		return nil
	}
	path := filepath.Join(q.dir, "pending", id)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	w := binenc.NewWriter(len(payload) + 64)
	w.String(affinity)
	w.Raw(payload)
	return atomicWrite(path, frame(w.Bytes()))
}

// Claim leases the best available job for this worker: own-affinity
// jobs first (rendezvous hash of the affinity key over peers), then
// anyone's backlog. ok=false means the pending queue is empty (jobs
// leased by other workers are not available).
func (q *Queue) Claim(workerID string, peers []string) (*Claimed, bool, error) {
	entries, err := os.ReadDir(filepath.Join(q.dir, "pending"))
	if err != nil {
		return nil, false, fmt.Errorf("artifact: claim: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)

	var own, others []string
	for _, id := range names {
		aff, _, err := q.readPending(id)
		if err != nil {
			continue // claimed and completed since ReadDir, or torn write
		}
		if Owner(aff, peers) == workerID || len(peers) <= 1 {
			own = append(own, id)
		} else {
			others = append(others, id)
		}
	}
	now := time.Now().UnixNano()
	for _, id := range append(own, others...) {
		if meta := q.readAttempts(id); meta.NotBefore > now {
			continue // backing off; not eligible yet
		}
		release, ok := q.tryLease(id)
		if !ok {
			continue
		}
		aff, payload, err := q.readPending(id)
		if err != nil {
			// Finished (or corrupt) under a stale lease; clean up.
			release()
			continue
		}
		if q.IsDone(id) {
			_ = os.Remove(filepath.Join(q.dir, "pending", id))
			release()
			continue
		}
		// Charge the attempt under the lease. A job already at its
		// budget got here via a crashed (or failed) final attempt:
		// dead-letter it rather than run it again.
		meta := q.readAttempts(id)
		if meta.Attempts >= q.MaxAttempts {
			_ = q.deadLetter(id, payload, meta.Attempts, meta.LastError)
			release()
			continue
		}
		meta.Attempts++
		meta.NotBefore = 0
		q.writeAttempts(id, meta)
		return &Claimed{
			Job:     Job{ID: id, Affinity: aff, Payload: payload},
			Attempt: meta.Attempts,
			q:       q,
			release: release,
		}, true, nil
	}
	return nil, false, nil
}

// Pending reports how many jobs are queued (leased or not).
func (q *Queue) Pending() int {
	entries, err := os.ReadDir(filepath.Join(q.dir, "pending"))
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() {
			n++
		}
	}
	return n
}

// IsDone reports whether the job has a completion marker.
func (q *Queue) IsDone(id string) bool {
	_, err := os.Stat(filepath.Join(q.dir, "done", jobID(id)))
	return err == nil
}

// Result returns a completed job's result bytes.
func (q *Queue) Result(id string) ([]byte, bool) {
	raw, err := os.ReadFile(filepath.Join(q.dir, "done", jobID(id)))
	if err != nil {
		return nil, false
	}
	payload, err := unframe(raw)
	if err != nil {
		return nil, false
	}
	return payload, true
}

// Done marks the claimed job complete with a result and removes it
// from the pending queue. The marker is written before the pending
// file is removed, so a crash between the two leaves a duplicate that
// every claimer skips, never a lost job.
func (c *Claimed) Done(result []byte) error {
	defer c.release()
	if err := fault.Hook(context.Background(), fault.PointQueueDone); err != nil {
		return err
	}
	if err := atomicWrite(filepath.Join(c.q.dir, "done", c.ID), frame(result)); err != nil {
		return err
	}
	// The attempts record is left in place: a completed job's attempt
	// count stays queryable (crash-recovery observability), and Enqueue
	// dedupes by the done marker so it can never re-charge.
	return os.Remove(filepath.Join(c.q.dir, "pending", c.ID))
}

// Release returns the job to the queue un-run (worker shutting down).
// The attempt already charged at claim stands — a lease that is taken
// and released without running still burned budget; graceful shutdown
// paths that want the attempt back can live with the small loss, and
// crash loops stay bounded.
func (c *Claimed) Release() { c.release() }

// Fail records a failed execution attempt. If budget remains the job
// stays pending with an exponential-backoff deadline (no claimer
// touches it until the deadline passes); otherwise it is dead-lettered
// and dead=true is returned. Either way the lease is released.
func (c *Claimed) Fail(cause string) (dead bool, err error) {
	defer c.release()
	if c.Attempt >= c.q.MaxAttempts {
		return true, c.q.deadLetter(c.ID, c.Payload, c.Attempt, cause)
	}
	meta := c.q.readAttempts(c.ID)
	meta.Attempts = c.Attempt
	meta.NotBefore = time.Now().Add(c.q.backoff(c.ID, c.Attempt)).UnixNano()
	meta.LastError = cause
	c.q.writeAttempts(c.ID, meta)
	return false, nil
}

// Reject dead-letters the claimed job immediately — for permanent
// failures (malformed payloads, unbuildable requests) where retrying
// cannot help.
func (c *Claimed) Reject(cause string) error {
	defer c.release()
	return c.q.deadLetter(c.ID, c.Payload, c.Attempt, cause)
}

// Backoff returns the retry delay after a given failed attempt: base
// doubled per attempt, capped at max, plus a deterministic jitter
// derived from (id, attempt) so co-failing workers spread out
// identically on every replay of a seeded run. Non-positive base and
// max fall back to DefaultBackoffBase and DefaultBackoffMax, so a
// zero-value caller still gets exponential growth with a sane cap.
// It is the one backoff schedule shared by the queue's retry plane
// and rcad's in-process flight retries.
func Backoff(id string, attempt int, base, max time.Duration) time.Duration {
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if max <= 0 {
		max = DefaultBackoffMax
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	h.Write([]byte(strconv.Itoa(attempt)))
	return d + time.Duration(h.Sum64()%uint64(base))
}

// backoff is the queue's retry delay (see Backoff). A directly
// constructed Queue{} — no BackoffBase/BackoffMax set — previously
// never grew past the base delay because the doubling loop compared
// against a zero cap; the shared helper defaults both knobs.
func (q *Queue) backoff(id string, attempt int) time.Duration {
	return Backoff(id, attempt, q.BackoffBase, q.BackoffMax)
}

// attemptMeta is the per-job retry bookkeeping at queue/attempts/<id>.
type attemptMeta struct {
	Attempts  int    `json:"attempts"`
	NotBefore int64  `json:"not_before_unix_ns,omitempty"`
	LastError string `json:"last_error,omitempty"`
}

// readAttempts loads a job's retry bookkeeping; a missing or torn file
// reads as the zero meta (fresh job).
func (q *Queue) readAttempts(id string) attemptMeta {
	var meta attemptMeta
	raw, err := os.ReadFile(filepath.Join(q.dir, "attempts", jobID(id)))
	if err != nil {
		return meta
	}
	_ = json.Unmarshal(raw, &meta)
	return meta
}

func (q *Queue) writeAttempts(id string, meta attemptMeta) {
	data, err := json.Marshal(meta)
	if err != nil {
		return
	}
	_ = atomicWrite(filepath.Join(q.dir, "attempts", jobID(id)), data)
}

// Attempts reports how many executions the job has been charged for.
func (q *Queue) Attempts(id string) int { return q.readAttempts(id).Attempts }

// FailedJob is a dead-lettered job's terminal record.
type FailedJob struct {
	ID       string
	Attempts int
	Error    string
	At       time.Time
	Payload  []byte
}

// deadLetter writes the terminal failure record and retires the job
// from pending and attempts bookkeeping. The record is written before
// the pending file is removed (same crash ordering as Done).
func (q *Queue) deadLetter(id string, payload []byte, attempts int, cause string) error {
	if cause == "" {
		cause = "attempt budget exhausted (worker crashed mid-job?)"
	}
	w := binenc.NewWriter(len(payload) + len(cause) + 64)
	w.String(cause)
	w.Int(attempts)
	w.I64(time.Now().UnixNano())
	w.Raw(payload)
	if err := atomicWrite(filepath.Join(q.dir, "failed", jobID(id)), frame(w.Bytes())); err != nil {
		return err
	}
	_ = os.Remove(filepath.Join(q.dir, "pending", jobID(id)))
	_ = os.Remove(filepath.Join(q.dir, "attempts", jobID(id)))
	return nil
}

// Failed returns the dead-letter record for a job, if it has one.
func (q *Queue) Failed(id string) (*FailedJob, bool) {
	raw, err := os.ReadFile(filepath.Join(q.dir, "failed", jobID(id)))
	if err != nil {
		return nil, false
	}
	body, err := unframe(raw)
	if err != nil {
		return nil, false
	}
	r := binenc.NewReader(body)
	fj := &FailedJob{ID: jobID(id)}
	fj.Error = r.String()
	fj.Attempts = r.Int()
	fj.At = time.Unix(0, r.I64())
	fj.Payload = r.Raw()
	if err := r.Done(); err != nil {
		return nil, false
	}
	return fj, true
}

// FailedCount reports how many jobs are dead-lettered.
func (q *Queue) FailedCount() int {
	entries, err := os.ReadDir(filepath.Join(q.dir, "failed"))
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() {
			n++
		}
	}
	return n
}

func (q *Queue) readPending(id string) (affinity string, payload []byte, err error) {
	raw, err := os.ReadFile(filepath.Join(q.dir, "pending", id))
	if err != nil {
		return "", nil, err
	}
	body, err := unframe(raw)
	if err != nil {
		return "", nil, err
	}
	r := binenc.NewReader(body)
	affinity = r.String()
	payload = r.Raw()
	if err := r.Done(); err != nil {
		return "", nil, err
	}
	return affinity, payload, nil
}

// tryLease acquires the job's lease non-blockingly, stealing leases
// older than the store's stale timeout.
func (q *Queue) tryLease(id string) (func(), bool) {
	if err := fault.Hook(context.Background(), fault.PointQueueLease); err != nil {
		return nil, false // injected lease failure: job stays claimable
	}
	path := filepath.Join(q.dir, "leases", id+".lock")
	if fi, err := os.Stat(path); err == nil && time.Since(fi.ModTime()) > q.s.lockStale {
		if os.Remove(path) == nil {
			q.s.steals.Add(1)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, false
	}
	_, _ = fmt.Fprintf(f, "%d\n", os.Getpid())
	_ = f.Close()
	return func() { _ = os.Remove(path) }, true
}

// Owner returns the rendezvous-hash (highest-random-weight) owner of a
// key among peers: each (key, peer) pair scores independently and the
// maximum wins, so adding or removing one worker only remaps the keys
// that worker owned. Empty peers returns "".
func Owner(key string, peers []string) string {
	var best string
	var bestScore uint64
	for _, p := range peers {
		h := fnv.New64a()
		h.Write([]byte(key))
		h.Write([]byte{0})
		h.Write([]byte(p))
		score := h.Sum64()
		if best == "" || score > bestScore || (score == bestScore && p < best) {
			best, bestScore = p, score
		}
	}
	return best
}

// atomicWrite writes a file via tmp+rename in its final directory.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("artifact: write %s: %w", filepath.Base(path), err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("artifact: write %s: %v / %v", filepath.Base(path), werr, cerr)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("artifact: write %s: %w", filepath.Base(path), err)
	}
	return nil
}
