package artifact

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/climate-rca/rca/internal/binenc"
)

// Queue is a crash-tolerant work queue shared by every worker process
// pointed at one store directory — the pkggen-style scheduler shape:
// jobs are files, claims are lock-file leases, completion is a marker
// file, and a worker that dies mid-job just lets its lease go stale
// for another worker to steal.
//
// Layout under <store>/queue:
//
//	pending/<id>   job payload (affinity key + body, framed)
//	leases/<id>.lock   held while a worker runs the job
//	done/<id>      completion marker (result bytes, framed)
//
// Claim orders candidates by consistent-hash affinity: jobs whose
// affinity key rendezvous-hashes to this worker come first, so N
// workers partition the keyspace (same-buildKey jobs land on the same
// worker and share its hot in-process caches) while still stealing
// another worker's backlog when idle.
type Queue struct {
	s   *Store
	dir string
}

// Queue opens the store's shared work queue.
func (s *Store) Queue() (*Queue, error) {
	q := &Queue{s: s, dir: filepath.Join(s.dir, "queue")}
	for _, sub := range []string{"pending", "leases", "done"} {
		if err := os.MkdirAll(filepath.Join(q.dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("artifact: open queue: %w", err)
		}
	}
	return q, nil
}

// Job is one queued unit of work.
type Job struct {
	ID       string
	Affinity string // consistent-hash routing key (buildKey hash)
	Payload  []byte
}

// Claimed is a leased job; exactly one worker holds it at a time.
type Claimed struct {
	Job
	q       *Queue
	release func()
}

func jobID(id string) string {
	// IDs come from callers as fingerprint hashes; keep them path-safe
	// defensively.
	return filepath.Base(id)
}

// Enqueue adds a job if no job with the same id is pending or done —
// idempotent, so every worker (or a dispatcher) can enqueue the same
// catalog and the queue dedupes by id.
func (q *Queue) Enqueue(id, affinity string, payload []byte) error {
	id = jobID(id)
	if q.IsDone(id) {
		return nil
	}
	path := filepath.Join(q.dir, "pending", id)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	w := binenc.NewWriter(len(payload) + 64)
	w.String(affinity)
	w.Raw(payload)
	return atomicWrite(path, frame(w.Bytes()))
}

// Claim leases the best available job for this worker: own-affinity
// jobs first (rendezvous hash of the affinity key over peers), then
// anyone's backlog. ok=false means the pending queue is empty (jobs
// leased by other workers are not available).
func (q *Queue) Claim(workerID string, peers []string) (*Claimed, bool, error) {
	entries, err := os.ReadDir(filepath.Join(q.dir, "pending"))
	if err != nil {
		return nil, false, fmt.Errorf("artifact: claim: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)

	var own, others []string
	for _, id := range names {
		aff, _, err := q.readPending(id)
		if err != nil {
			continue // claimed and completed since ReadDir, or torn write
		}
		if Owner(aff, peers) == workerID || len(peers) <= 1 {
			own = append(own, id)
		} else {
			others = append(others, id)
		}
	}
	for _, id := range append(own, others...) {
		release, ok := q.tryLease(id)
		if !ok {
			continue
		}
		aff, payload, err := q.readPending(id)
		if err != nil {
			// Finished (or corrupt) under a stale lease; clean up.
			release()
			continue
		}
		if q.IsDone(id) {
			_ = os.Remove(filepath.Join(q.dir, "pending", id))
			release()
			continue
		}
		return &Claimed{
			Job:     Job{ID: id, Affinity: aff, Payload: payload},
			q:       q,
			release: release,
		}, true, nil
	}
	return nil, false, nil
}

// Pending reports how many jobs are queued (leased or not).
func (q *Queue) Pending() int {
	entries, err := os.ReadDir(filepath.Join(q.dir, "pending"))
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() {
			n++
		}
	}
	return n
}

// IsDone reports whether the job has a completion marker.
func (q *Queue) IsDone(id string) bool {
	_, err := os.Stat(filepath.Join(q.dir, "done", jobID(id)))
	return err == nil
}

// Result returns a completed job's result bytes.
func (q *Queue) Result(id string) ([]byte, bool) {
	raw, err := os.ReadFile(filepath.Join(q.dir, "done", jobID(id)))
	if err != nil {
		return nil, false
	}
	payload, err := unframe(raw)
	if err != nil {
		return nil, false
	}
	return payload, true
}

// Done marks the claimed job complete with a result and removes it
// from the pending queue. The marker is written before the pending
// file is removed, so a crash between the two leaves a duplicate that
// every claimer skips, never a lost job.
func (c *Claimed) Done(result []byte) error {
	defer c.release()
	if err := atomicWrite(filepath.Join(c.q.dir, "done", c.ID), frame(result)); err != nil {
		return err
	}
	return os.Remove(filepath.Join(c.q.dir, "pending", c.ID))
}

// Release returns the job to the queue un-run (worker shutting down).
func (c *Claimed) Release() { c.release() }

func (q *Queue) readPending(id string) (affinity string, payload []byte, err error) {
	raw, err := os.ReadFile(filepath.Join(q.dir, "pending", id))
	if err != nil {
		return "", nil, err
	}
	body, err := unframe(raw)
	if err != nil {
		return "", nil, err
	}
	r := binenc.NewReader(body)
	affinity = r.String()
	payload = r.Raw()
	if err := r.Done(); err != nil {
		return "", nil, err
	}
	return affinity, payload, nil
}

// tryLease acquires the job's lease non-blockingly, stealing leases
// older than the store's stale timeout.
func (q *Queue) tryLease(id string) (func(), bool) {
	path := filepath.Join(q.dir, "leases", id+".lock")
	if fi, err := os.Stat(path); err == nil && time.Since(fi.ModTime()) > q.s.lockStale {
		if os.Remove(path) == nil {
			q.s.steals.Add(1)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, false
	}
	_, _ = fmt.Fprintf(f, "%d\n", os.Getpid())
	_ = f.Close()
	return func() { _ = os.Remove(path) }, true
}

// Owner returns the rendezvous-hash (highest-random-weight) owner of a
// key among peers: each (key, peer) pair scores independently and the
// maximum wins, so adding or removing one worker only remaps the keys
// that worker owned. Empty peers returns "".
func Owner(key string, peers []string) string {
	var best string
	var bestScore uint64
	for _, p := range peers {
		h := fnv.New64a()
		h.Write([]byte(key))
		h.Write([]byte{0})
		h.Write([]byte(p))
		score := h.Sum64()
		if best == "" || score > bestScore || (score == bestScore && p < best) {
			best, bestScore = p, score
		}
	}
	return best
}

// atomicWrite writes a file via tmp+rename in its final directory.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("artifact: write %s: %w", filepath.Base(path), err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("artifact: write %s: %v / %v", filepath.Base(path), werr, cerr)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("artifact: write %s: %w", filepath.Base(path), err)
	}
	return nil
}
