package slicing

import (
	"testing"

	"github.com/climate-rca/rca/internal/corpus"
	"github.com/climate-rca/rca/internal/fortran"
	"github.com/climate-rca/rca/internal/metagraph"
)

func mgFor(t *testing.T, srcs ...string) *metagraph.Metagraph {
	t.Helper()
	var mods []*fortran.Module
	for _, s := range srcs {
		ms, err := fortran.ParseFile(s)
		if err != nil {
			t.Fatal(err)
		}
		mods = append(mods, ms...)
	}
	mg, err := metagraph.Build(mods)
	if err != nil {
		t.Fatal(err)
	}
	return mg
}

const sliceSrc = `
module m
  real :: a, b, c, out, unrelated, downstream
contains
  subroutine s()
    b = a * 2.0
    c = b + 1.0
    out = c * 3.0
    downstream = out + 1.0
    unrelated = 42.0
    call outfld('OUT', out)
  end subroutine
end module
`

func TestFromOutputsAncestorClosure(t *testing.T) {
	mg := mgFor(t, sliceSrc)
	s, err := FromOutputs(mg, []string{"OUT"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Slice = {a, b, c, out}: ancestors of out only.
	if s.Sub.NumNodes() != 4 {
		t.Fatalf("slice nodes = %d; want 4", s.Sub.NumNodes())
	}
	names := map[string]bool{}
	for _, g := range s.NodeMap {
		names[mg.Nodes[g].Canonical] = true
	}
	for _, want := range []string{"a", "b", "c", "out"} {
		if !names[want] {
			t.Fatalf("slice missing %s: %v", want, names)
		}
	}
	if names["unrelated"] || names["downstream"] {
		t.Fatalf("slice over-approximates: %v", names)
	}
	if len(s.Targets) != 1 {
		t.Fatalf("targets = %v", s.Targets)
	}
}

func TestFromOutputsUnknownLabel(t *testing.T) {
	mg := mgFor(t, sliceSrc)
	if _, err := FromOutputs(mg, []string{"NOPE"}, Options{}); err == nil {
		t.Fatal("unknown label accepted")
	}
}

func TestFromInternalsMultipleTargets(t *testing.T) {
	mg := mgFor(t, sliceSrc)
	s, err := FromInternals(mg, []string{"out", "unrelated"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Union of both ancestor sets.
	if s.Sub.NumNodes() != 5 {
		t.Fatalf("slice nodes = %d; want 5", s.Sub.NumNodes())
	}
	if len(s.Targets) != 2 {
		t.Fatalf("targets = %v", s.Targets)
	}
}

func TestModuleFilterAndClusters(t *testing.T) {
	mg := mgFor(t, `
module cammod
  real :: x, y
contains
  subroutine s()
    y = x * 2.0
    call outfld('Y', y)
  end subroutine
end module
`, `
module lndmod
  use cammod
  real :: z, w
contains
  subroutine s2()
    z = x + 1.0
    w = z * 2.0
    y = w
  end subroutine
end module
`)
	s, err := FromOutputs(mg, []string{"Y"}, Options{
		ModuleFilter: func(m string) bool { return m == "cammod" },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range s.NodeMap {
		if mg.Nodes[g].Module != "cammod" {
			t.Fatalf("filter leaked module %s", mg.Nodes[g].Module)
		}
	}
}

func TestMinClusterSizeDropsResiduals(t *testing.T) {
	mg := mgFor(t, `
module m
  real :: a, b, out, i1, i2
contains
  subroutine s()
    b = a * 2.0
    out = b + 1.0
    i2 = i1 * 2.0
    call outfld('OUT', out)
    call outfld('I2', i2)
  end subroutine
end module
`)
	// Slice on both outputs: two weak components {a,b,out} and {i1,i2}.
	s, err := FromOutputs(mg, []string{"OUT", "I2"}, Options{MinClusterSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Sub.NumNodes() != 3 {
		t.Fatalf("nodes = %d; want 3 (small cluster dropped)", s.Sub.NumNodes())
	}
}

func TestIDTranslation(t *testing.T) {
	mg := mgFor(t, sliceSrc)
	s, err := FromOutputs(mg, []string{"OUT"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, s.Sub.NumNodes())
	for i := range all {
		all[i] = i
	}
	gids := s.GraphIDs(all)
	back := s.LocalIDs(gids)
	if len(back) != len(all) {
		t.Fatalf("roundtrip lost nodes: %v -> %v", all, back)
	}
	// Foreign ids are dropped.
	if got := s.LocalIDs([]int{999999}); len(got) != 0 {
		t.Fatalf("foreign id translated: %v", got)
	}
}

// TestPaperScaleShape checks the slice shapes on the synthetic corpus:
// a WSUB slice is tiny (paper: 14 nodes), a multi-variable slice is a
// few orders larger (paper: thousands of nodes).
func TestPaperScaleShape(t *testing.T) {
	c := corpus.Generate(corpus.Config{AuxModules: 60, Seed: 2})
	mods, err := c.Parse()
	if err != nil {
		t.Fatal(err)
	}
	mg, err := metagraph.Build(mods)
	if err != nil {
		t.Fatal(err)
	}
	wsub, err := FromOutputs(mg, []string{"WSUB"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	big, err := FromOutputs(mg, []string{"FLDS", "QRL", "TAUX", "SNOWHLND", "FLNS"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if wsub.Sub.NumNodes() > 25 {
		t.Fatalf("WSUB slice = %d nodes; want tiny", wsub.Sub.NumNodes())
	}
	if big.Sub.NumNodes() < 10*wsub.Sub.NumNodes() {
		t.Fatalf("multi-output slice %d not much larger than WSUB %d",
			big.Sub.NumNodes(), wsub.Sub.NumNodes())
	}
}
