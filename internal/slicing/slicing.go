// Package slicing implements the paper's hybrid static slicing (§5.1):
// given the output variables most affected by a discrepancy, find the
// internal canonical names they correspond to, take the union of all
// BFS shortest directed paths terminating on those nodes, and induce a
// subgraph on the union. Code coverage supplies the dynamic component
// (the metagraph is built from coverage-filtered source), making the
// slice "hybrid" in the Gupta-Soffa sense.
package slicing

import (
	"fmt"
	"sort"

	"github.com/climate-rca/rca/internal/graph"
	"github.com/climate-rca/rca/internal/metagraph"
)

// Options tunes slice extraction.
type Options struct {
	// ModuleFilter, when non-nil, keeps only nodes whose module
	// satisfies the predicate (the paper restricts experiments to CAM
	// modules, §6).
	ModuleFilter func(module string) bool
	// MinClusterSize drops weakly connected clusters smaller than this
	// from the slice (the paper removes residual clusters of < 4 nodes
	// created by the CAM restriction). 0 keeps everything.
	MinClusterSize int
}

// Slice is an induced subgraph of the metagraph.
type Slice struct {
	// Sub is the induced subgraph; node i of Sub corresponds to
	// metagraph node NodeMap[i].
	Sub     *graph.Digraph
	NodeMap []int
	// Targets are Sub-local ids of the slicing-criterion nodes.
	Targets []int
	// Internals names the internal canonical variables sliced on.
	Internals []string
}

// FromOutputs builds the slice for a set of output (history file)
// labels. Labels are mapped to internal canonical names through the
// metagraph's outfld instrumentation; unknown labels are an error
// (they indicate an output the parser never saw written).
func FromOutputs(mg *metagraph.Metagraph, labels []string, opt Options) (*Slice, error) {
	var internals []string
	for _, lbl := range labels {
		internal, ok := mg.OutputMap[lbl]
		if !ok {
			return nil, fmt.Errorf("slicing: no outfld mapping for label %q", lbl)
		}
		internals = append(internals, internal)
	}
	return FromInternals(mg, internals, opt)
}

// FromInternals builds the slice for internal canonical variable
// names directly (paper §5.1: paths terminate on nodes whose canonical
// name matches, e.g. "omega" rather than state%omega's base).
func FromInternals(mg *metagraph.Metagraph, internals []string, opt Options) (*Slice, error) {
	var targets []int
	seen := map[int]bool{}
	for _, name := range internals {
		for _, id := range mg.ByCanonical(name) {
			if !seen[id] {
				seen[id] = true
				targets = append(targets, id)
			}
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("slicing: no nodes for internals %v", internals)
	}
	// Union of all shortest directed paths terminating on the targets
	// = ancestor closure (see graph.Ancestors).
	nodes := mg.G.Ancestors(targets)
	if opt.ModuleFilter != nil {
		kept := nodes[:0]
		for _, n := range nodes {
			if opt.ModuleFilter(mg.Nodes[n].Module) {
				kept = append(kept, n)
			}
		}
		nodes = kept
	}
	sub, nodeMap := mg.G.Subgraph(nodes)
	if opt.MinClusterSize > 1 {
		sub, nodeMap = dropSmallClusters(sub, nodeMap, opt.MinClusterSize)
	}
	s := &Slice{Sub: sub, NodeMap: nodeMap, Internals: internals}
	// Locate targets in the final subgraph.
	pos := make(map[int]int, len(nodeMap))
	for i, g := range nodeMap {
		pos[g] = i
	}
	for _, t := range targets {
		if i, ok := pos[t]; ok {
			s.Targets = append(s.Targets, i)
		}
	}
	sort.Ints(s.Targets)
	return s, nil
}

func dropSmallClusters(sub *graph.Digraph, nodeMap []int, minSize int) (*graph.Digraph, []int) {
	var keep []int
	for _, comp := range sub.WeaklyConnectedComponents() {
		if len(comp) >= minSize {
			keep = append(keep, comp...)
		}
	}
	smaller, localMap := sub.Subgraph(keep)
	outMap := make([]int, len(localMap))
	for i, l := range localMap {
		outMap[i] = nodeMap[l]
	}
	return smaller, outMap
}

// GraphIDs translates Sub-local node ids to metagraph ids.
func (s *Slice) GraphIDs(local []int) []int {
	out := make([]int, len(local))
	for i, l := range local {
		out[i] = s.NodeMap[l]
	}
	return out
}

// LocalIDs translates metagraph ids to Sub-local ids, dropping ids not
// present in the slice.
func (s *Slice) LocalIDs(global []int) []int {
	pos := make(map[int]int, len(s.NodeMap))
	for i, g := range s.NodeMap {
		pos[g] = i
	}
	var out []int
	for _, g := range global {
		if i, ok := pos[g]; ok {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}
