package graph

import "sort"

// This file implements the traversal primitives the slicing layer builds
// on: BFS shortest-path distances, ancestor/descendant closures, and the
// union of all shortest-path nodes terminating on a target set (§5.1).

// BFSFrom computes unweighted shortest-path distances from src following
// out-edges. Unreachable nodes have distance -1.
func (g *Digraph) BFSFrom(src int) []int {
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, 64)
	queue = append(queue, int32(src))
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range g.out[u] {
			if dist[v] == -1 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// BFSTo computes unweighted shortest-path distances to dst following
// in-edges backwards (i.e. distance from each node to dst). Unreachable
// nodes have distance -1.
func (g *Digraph) BFSTo(dst int) []int {
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[dst] = 0
	queue := make([]int32, 0, 64)
	queue = append(queue, int32(dst))
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range g.in[u] {
			if dist[v] == -1 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Ancestors returns the set of nodes from which at least one node in
// targets is reachable, including the targets themselves. Because any
// node u that reaches a target t lies on the shortest u→t path that
// starts at u, this set equals the union of the node sets of all
// shortest directed paths terminating on targets — the slice the paper
// induces in Algorithm 5.4 step 4.
func (g *Digraph) Ancestors(targets []int) []int {
	seen := make([]bool, g.NumNodes())
	queue := make([]int32, 0, len(targets))
	for _, t := range targets {
		if !seen[t] {
			seen[t] = true
			queue = append(queue, int32(t))
		}
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.in[u] {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return setToSlice(seen)
}

// Descendants returns the set of nodes reachable from sources, including
// the sources themselves.
func (g *Digraph) Descendants(sources []int) []int {
	seen := make([]bool, g.NumNodes())
	queue := make([]int32, 0, len(sources))
	for _, s := range sources {
		if !seen[s] {
			seen[s] = true
			queue = append(queue, int32(s))
		}
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.out[u] {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return setToSlice(seen)
}

func setToSlice(seen []bool) []int {
	out := make([]int, 0, 64)
	for i, ok := range seen {
		if ok {
			out = append(out, i)
		}
	}
	return out
}

// ShortestPathDAGNodes returns the set of nodes lying on at least one
// shortest directed path from any node to dst. A node u (that reaches
// dst) is on a shortest x→dst path iff there exists a predecessor chain
// consistent with BFS levels; since the path from u itself qualifies,
// this equals the ancestor set of dst. The function exists to make the
// equivalence explicit and testable against Ancestors.
func (g *Digraph) ShortestPathDAGNodes(dst int) []int {
	dist := g.BFSTo(dst)
	out := make([]int, 0, 64)
	for u, d := range dist {
		if d >= 0 {
			out = append(out, u)
		}
	}
	return out
}

// HasDirectedPath reports whether any node in from reaches any node in to.
func (g *Digraph) HasDirectedPath(from, to []int) bool {
	targets := make([]bool, g.NumNodes())
	for _, t := range to {
		targets[t] = true
	}
	seen := make([]bool, g.NumNodes())
	queue := make([]int32, 0, len(from))
	for _, s := range from {
		if targets[s] {
			return true
		}
		if !seen[s] {
			seen[s] = true
			queue = append(queue, int32(s))
		}
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.out[u] {
			if targets[v] {
				return true
			}
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return false
}

// WeaklyConnectedComponents returns the weakly connected components of g
// as slices of node ids. Component order is by smallest contained node
// id; node order within a component is ascending.
func (g *Digraph) WeaklyConnectedComponents() [][]int {
	comp := make([]int, g.NumNodes())
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	queue := make([]int32, 0, 64)
	for s := 0; s < g.NumNodes(); s++ {
		if comp[s] != -1 {
			continue
		}
		id := len(comps)
		comp[s] = id
		members := []int{s}
		queue = queue[:0]
		queue = append(queue, int32(s))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range g.out[u] {
				if comp[v] == -1 {
					comp[v] = id
					members = append(members, int(v))
					queue = append(queue, v)
				}
			}
			for _, v := range g.in[u] {
				if comp[v] == -1 {
					comp[v] = id
					members = append(members, int(v))
					queue = append(queue, v)
				}
			}
		}
		comps = append(comps, members)
	}
	for _, c := range comps {
		sort.Ints(c)
	}
	return comps
}
