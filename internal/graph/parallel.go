package graph

import (
	"sync"
	"sync/atomic"
)

// This file holds the bounded worker pool the parallel kernels share.
// Work is split into *shards* whose count is a fixed function of the
// problem size — never of the worker count — so that any reduction
// merged in shard-index order produces bit-identical results at every
// parallelism level, including 1. See DESIGN.md "Parallel graph-kernel
// engine" for the determinism argument.

// KernelShards is the fixed shard count the deterministic kernels use
// when the work size allows it. It bounds both the merge cost and the
// per-shard accumulator memory (shards x edges floats for Brandes).
const KernelShards = 32

// NumShards returns the shard count for n work items: min(n, KernelShards),
// at least 1. It depends only on n, keeping shard boundaries — and
// therefore floating-point reduction trees — independent of the worker
// count.
func NumShards(n int) int {
	if n <= 1 {
		return 1
	}
	if n < KernelShards {
		return n
	}
	return KernelShards
}

// ShardRange returns the half-open item range [lo, hi) of shard s when
// n items are split into shards contiguous shards as evenly as
// possible (the first n%shards shards take one extra item).
func ShardRange(n, shards, s int) (lo, hi int) {
	q, r := n/shards, n%shards
	lo = s*q + min(s, r)
	hi = lo + q
	if s < r {
		hi++
	}
	return lo, hi
}

// ParallelShards runs fn(shard, worker) for every shard in [0, shards)
// on min(par, shards) goroutines. Shards are claimed dynamically from
// an atomic counter, so stragglers do not serialize the pool; worker
// ids in [0, min(par, shards)) let callers reuse per-worker scratch
// state. par <= 1 runs everything on the calling goroutine.
func ParallelShards(par, shards int, fn func(shard, worker int)) {
	if par > shards {
		par = shards
	}
	if par <= 1 {
		for s := 0; s < shards; s++ {
			fn(s, 0)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= shards {
					return
				}
				fn(s, worker)
			}
		}(w)
	}
	wg.Wait()
}
