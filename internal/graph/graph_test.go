package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// chain builds 0->1->2->...->n-1.
func chain(n int) *Digraph {
	g := New(n)
	g.AddNodes(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestAddNodeAddEdge(t *testing.T) {
	g := New(0)
	a := g.AddNode()
	b := g.AddNode()
	if a != 0 || b != 1 {
		t.Fatalf("node ids = %d,%d; want 0,1", a, b)
	}
	g.AddEdge(a, b)
	if !g.HasEdge(a, b) {
		t.Fatal("edge a->b missing")
	}
	if g.HasEdge(b, a) {
		t.Fatal("unexpected reverse edge")
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("counts = %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestDuplicateEdgesCollapsed(t *testing.T) {
	g := New(2)
	g.AddNodes(2)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d; want 1", g.NumEdges())
	}
	if len(g.Out(0)) != 1 || len(g.In(1)) != 1 {
		t.Fatalf("adjacency duplicated: out=%v in=%v", g.Out(0), g.In(1))
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := New(1)
	g.AddNode()
	g.AddEdge(0, 5)
}

func TestRemoveEdge(t *testing.T) {
	g := chain(3)
	if !g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge(0,1) = false")
	}
	if g.RemoveEdge(0, 1) {
		t.Fatal("double removal succeeded")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d; want 1", g.NumEdges())
	}
	if g.HasEdge(0, 1) {
		t.Fatal("edge still present")
	}
	// Re-adding after removal must work (edgeSet must be consistent).
	g.AddEdge(0, 1)
	if !g.HasEdge(0, 1) {
		t.Fatal("re-added edge missing")
	}
}

func TestReverse(t *testing.T) {
	g := chain(4)
	r := g.Reverse()
	if !r.HasEdge(1, 0) || !r.HasEdge(3, 2) {
		t.Fatal("reverse edges missing")
	}
	if r.HasEdge(0, 1) {
		t.Fatal("forward edge present in reverse")
	}
	if r.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d vs %d", r.NumEdges(), g.NumEdges())
	}
}

func TestUndirected(t *testing.T) {
	g := chain(3)
	u := g.Undirected()
	for i := 0; i < 2; i++ {
		if !u.HasEdge(i, i+1) || !u.HasEdge(i+1, i) {
			t.Fatalf("symmetric pair %d missing", i)
		}
	}
	if u.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d; want 4", u.NumEdges())
	}
}

func TestUndirectedDropsSelfLoops(t *testing.T) {
	g := New(1)
	g.AddNode()
	g.AddEdge(0, 0)
	u := g.Undirected()
	if u.NumEdges() != 0 {
		t.Fatalf("self loop survived: %d edges", u.NumEdges())
	}
}

func TestBFSFrom(t *testing.T) {
	g := chain(5)
	d := g.BFSFrom(0)
	want := []int{0, 1, 2, 3, 4}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("BFSFrom = %v; want %v", d, want)
	}
	d = g.BFSFrom(3)
	want = []int{-1, -1, -1, 0, 1}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("BFSFrom(3) = %v; want %v", d, want)
	}
}

func TestBFSTo(t *testing.T) {
	g := chain(5)
	d := g.BFSTo(4)
	want := []int{4, 3, 2, 1, 0}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("BFSTo = %v; want %v", d, want)
	}
}

func TestBFSShortcut(t *testing.T) {
	// 0->1->2->3 plus shortcut 0->3.
	g := chain(4)
	g.AddEdge(0, 3)
	if d := g.BFSFrom(0); d[3] != 1 {
		t.Fatalf("dist(0,3) = %d; want 1", d[3])
	}
}

func TestAncestors(t *testing.T) {
	// Diamond: 0->1, 0->2, 1->3, 2->3, isolated 4.
	g := New(5)
	g.AddNodes(5)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	anc := g.Ancestors([]int{3})
	if !reflect.DeepEqual(anc, []int{0, 1, 2, 3}) {
		t.Fatalf("Ancestors = %v", anc)
	}
	if anc := g.Ancestors([]int{4}); !reflect.DeepEqual(anc, []int{4}) {
		t.Fatalf("Ancestors(4) = %v", anc)
	}
}

func TestDescendants(t *testing.T) {
	g := New(5)
	g.AddNodes(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	if d := g.Descendants([]int{0}); !reflect.DeepEqual(d, []int{0, 1, 2}) {
		t.Fatalf("Descendants = %v", d)
	}
}

func TestAncestorsEqualsShortestPathDAG(t *testing.T) {
	// Property asserted in the doc comment of ShortestPathDAGNodes,
	// checked on random DAG-ish graphs.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(40)
		g := New(n)
		g.AddNodes(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		dst := rng.Intn(n)
		a := g.Ancestors([]int{dst})
		b := g.ShortestPathDAGNodes(dst)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: ancestors %v != shortest-path nodes %v", trial, a, b)
		}
	}
}

func TestSubgraph(t *testing.T) {
	g := New(5)
	g.AddNodes(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	s, m := g.Subgraph([]int{1, 2, 4})
	if s.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", s.NumNodes())
	}
	if !reflect.DeepEqual(m, []int{1, 2, 4}) {
		t.Fatalf("mapping = %v", m)
	}
	if !s.HasEdge(0, 1) { // old 1->2
		t.Fatal("kept edge missing")
	}
	if s.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d; want 1", s.NumEdges())
	}
}

func TestSubgraphDedupsInput(t *testing.T) {
	g := chain(3)
	s, m := g.Subgraph([]int{2, 0, 2, 0})
	if s.NumNodes() != 2 || !reflect.DeepEqual(m, []int{0, 2}) {
		t.Fatalf("nodes=%d mapping=%v", s.NumNodes(), m)
	}
}

func TestHasDirectedPath(t *testing.T) {
	g := chain(4)
	if !g.HasDirectedPath([]int{0}, []int{3}) {
		t.Fatal("path 0~>3 not found")
	}
	if g.HasDirectedPath([]int{3}, []int{0}) {
		t.Fatal("backwards path reported")
	}
	if !g.HasDirectedPath([]int{2}, []int{2}) {
		t.Fatal("self membership not detected")
	}
}

func TestWeaklyConnectedComponents(t *testing.T) {
	g := New(6)
	g.AddNodes(6)
	g.AddEdge(0, 1)
	g.AddEdge(2, 1) // weakly joins {0,1,2}
	g.AddEdge(3, 4)
	comps := g.WeaklyConnectedComponents()
	want := [][]int{{0, 1, 2}, {3, 4}, {5}}
	if !reflect.DeepEqual(comps, want) {
		t.Fatalf("components = %v; want %v", comps, want)
	}
}

func TestQuotient(t *testing.T) {
	// Two "modules": {0,1} and {2,3}. Internal edge 0->1 dropped,
	// cross edges collapsed.
	g := New(4)
	g.AddNodes(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 3)
	g.AddEdge(2, 3)
	q := g.Quotient([]int{0, 0, 1, 1}, 2)
	if q.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d", q.NumNodes())
	}
	if !q.HasEdge(0, 1) {
		t.Fatal("collapsed cross edge missing")
	}
	if q.HasEdge(1, 0) || q.NumEdges() != 1 {
		t.Fatalf("unexpected edges: %d", q.NumEdges())
	}
}

func TestDegreeDistribution(t *testing.T) {
	g := chain(3) // degrees: 1, 2, 1
	hist := g.DegreeDistribution()
	if hist[1] != 2 || hist[2] != 1 {
		t.Fatalf("hist = %v", hist)
	}
}

func TestClone(t *testing.T) {
	g := chain(3)
	c := g.Clone()
	c.RemoveEdge(0, 1)
	if !g.HasEdge(0, 1) {
		t.Fatal("clone aliases original")
	}
	if c.HasEdge(0, 1) {
		t.Fatal("clone removal failed")
	}
}

// Property: for random graphs, Subgraph over all nodes is isomorphic
// (identical, given identity mapping) to the original.
func TestSubgraphIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		g := New(n)
		g.AddNodes(n)
		for i := 0; i < 2*n; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		s, _ := g.Subgraph(all)
		if s.NumNodes() != g.NumNodes() || s.NumEdges() != g.NumEdges() {
			return false
		}
		ok := true
		g.Edges(func(u, v int) {
			if !s.HasEdge(u, v) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Reverse(Reverse(g)) == g edge-for-edge.
func TestReverseInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		g := New(n)
		g.AddNodes(n)
		for i := 0; i < 2*n; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		rr := g.Reverse().Reverse()
		if rr.NumEdges() != g.NumEdges() {
			return false
		}
		ok := true
		g.Edges(func(u, v int) {
			if !rr.HasEdge(u, v) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: WCC partitions the node set (every node in exactly one comp).
func TestWCCPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		g := New(n)
		g.AddNodes(n)
		for i := 0; i < n; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		seen := make(map[int]int)
		for _, c := range g.WeaklyConnectedComponents() {
			for _, v := range c {
				seen[v]++
			}
		}
		if len(seen) != n {
			return false
		}
		for _, k := range seen {
			if k != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: ancestors of a target always contain the target and are
// closed under in-edges.
func TestAncestorsClosedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := New(n)
		g.AddNodes(n)
		for i := 0; i < 3*n; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		t0 := rng.Intn(n)
		anc := g.Ancestors([]int{t0})
		in := make(map[int]bool, len(anc))
		for _, a := range anc {
			in[a] = true
		}
		if !in[t0] {
			return false
		}
		for _, a := range anc {
			for _, p := range g.In(a) {
				if !in[int(p)] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgesDeterministicOrder(t *testing.T) {
	g := New(3)
	g.AddNodes(3)
	g.AddEdge(2, 0)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	var got [][2]int
	g.Edges(func(u, v int) { got = append(got, [2]int{u, v}) })
	want := [][2]int{{0, 1}, {0, 2}, {2, 0}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("edge order = %v; want %v", got, want)
	}
}

func TestDedupSortedInts(t *testing.T) {
	in := []int{1, 1, 2, 3, 3, 3, 9}
	sort.Ints(in)
	out := dedupSortedInts(in)
	if !reflect.DeepEqual(out, []int{1, 2, 3, 9}) {
		t.Fatalf("dedup = %v", out)
	}
	if got := dedupSortedInts(nil); len(got) != 0 {
		t.Fatalf("dedup(nil) = %v", got)
	}
}
