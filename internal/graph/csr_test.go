package graph

import (
	"math/rand"
	"testing"
)

// TestFreezeMatchesDigraph checks the CSR snapshot against the builder
// it froze: same adjacency in the same order, consistent edge ids on
// both sides, and O(1) lookup agreeing with the builder's edge set.
func TestFreezeMatchesDigraph(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := randomGraph(60, 400, seed)
		// A few self-loops and reciprocal edges to exercise the
		// undirected-id assignment.
		g.AddEdge(5, 5)
		g.AddEdge(7, 9)
		g.AddEdge(9, 7)
		c := Freeze(g)

		if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() {
			t.Fatalf("size mismatch: csr %d/%d vs digraph %d/%d",
				c.NumNodes(), c.NumEdges(), g.NumNodes(), g.NumEdges())
		}
		// Edge ids follow Digraph.Edges iteration order.
		id := int32(0)
		g.Edges(func(u, v int) {
			eu, ev := c.Endpoints(id)
			if int(eu) != u || int(ev) != v {
				t.Fatalf("edge id %d = (%d,%d); want (%d,%d)", id, eu, ev, u, v)
			}
			if got := c.EdgeID(u, v); got != id {
				t.Fatalf("EdgeID(%d,%d) = %d; want %d", u, v, got, id)
			}
			id++
		})
		// Lookup agrees with the builder for every pair.
		for u := 0; u < g.NumNodes(); u++ {
			for v := 0; v < g.NumNodes(); v++ {
				if c.HasEdge(u, v) != g.HasEdge(u, v) {
					t.Fatalf("HasEdge(%d,%d) = %v; digraph says %v",
						u, v, c.HasEdge(u, v), g.HasEdge(u, v))
				}
			}
		}
		// Out slices mirror the builder's (same order).
		for u := 0; u < g.NumNodes(); u++ {
			out := c.Out(u)
			if len(out) != g.OutDegree(u) {
				t.Fatalf("out degree mismatch at %d", u)
			}
			for i, v := range g.Out(u) {
				if out[i] != v {
					t.Fatalf("out order differs at %d[%d]", u, i)
				}
			}
		}
		// In-slots carry matching edge ids.
		for v := 0; v < c.NumNodes(); v++ {
			ids := c.InEdgeIDs(v)
			for i, u := range c.In(v) {
				eu, ev := c.Endpoints(ids[i])
				if eu != u || int(ev) != v {
					t.Fatalf("in-slot %d of %d: edge id %d = (%d,%d); want (%d,%d)",
						i, v, ids[i], eu, ev, u, v)
				}
			}
		}
	}
}

// TestUndirectedIDs checks that reciprocal orientations share one
// undirected id with canonical endpoints and that ids are dense.
func TestUndirectedIDs(t *testing.T) {
	g := randomGraph(40, 150, 4).Undirected()
	g.AddEdge(3, 3) // self-loop gets its own id
	c := Freeze(g)
	seen := make([]int, c.NumUndirEdges())
	for id := int32(0); id < int32(c.NumEdges()); id++ {
		u, v := c.Endpoints(id)
		uid := c.UndirID(id)
		cu, cv := c.UndirEndpoints(uid)
		if cu > cv {
			t.Fatalf("undirected endpoints not canonical: (%d,%d)", cu, cv)
		}
		if min, max := minmax(u, v); cu != min || cv != max {
			t.Fatalf("undirected id %d endpoints (%d,%d) don't match edge (%d,%d)",
				uid, cu, cv, u, v)
		}
		if u != v {
			rev := c.EdgeID(int(v), int(u))
			if rev < 0 || c.UndirID(rev) != uid {
				t.Fatalf("orientations of (%d,%d) have different undirected ids", u, v)
			}
		}
		seen[uid]++
	}
	for uid, n := range seen {
		u, v := c.UndirEndpoints(int32(uid))
		want := 2
		if u == v {
			want = 1
		}
		if n != want {
			t.Fatalf("undirected id %d covered by %d directed edges; want %d", uid, n, want)
		}
	}
}

func minmax(a, b int32) (int32, int32) {
	if a <= b {
		return a, b
	}
	return b, a
}

// TestShardRangesPartition pins the fixed-shard split: contiguous,
// disjoint, covering, and a function of n only.
func TestShardRangesPartition(t *testing.T) {
	for _, n := range []int{0, 1, 5, 31, 32, 33, 1000} {
		shards := NumShards(n)
		if n > 0 && (shards < 1 || shards > KernelShards || shards > max(n, 1)) {
			t.Fatalf("n=%d: shards=%d", n, shards)
		}
		prev := 0
		for s := 0; s < shards; s++ {
			lo, hi := ShardRange(n, shards, s)
			if lo != prev || hi < lo {
				t.Fatalf("n=%d shard %d: range [%d,%d) not contiguous from %d", n, s, lo, hi, prev)
			}
			prev = hi
		}
		if prev != n {
			t.Fatalf("n=%d: shards cover [0,%d); want [0,%d)", n, prev, n)
		}
	}
}

// TestParallelShardsRunsAll checks every shard runs exactly once at
// several worker counts.
func TestParallelShardsRunsAll(t *testing.T) {
	for _, par := range []int{1, 2, 7, 64} {
		ran := make([]int32, 100)
		ParallelShards(par, len(ran), func(shard, worker int) {
			ran[shard]++
		})
		for s, n := range ran {
			if n != 1 {
				t.Fatalf("par=%d: shard %d ran %d times", par, s, n)
			}
		}
	}
}

func BenchmarkFreeze(b *testing.B) {
	g := randomGraph(5000, 20000, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Freeze(g)
	}
}

func BenchmarkCSREdgeID(b *testing.B) {
	g := randomGraph(5000, 20000, 7)
	c := Freeze(g)
	rng := rand.New(rand.NewSource(8))
	us := make([]int, 1024)
	vs := make([]int, 1024)
	for i := range us {
		us[i], vs[i] = rng.Intn(5000), rng.Intn(5000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EdgeID(us[i%1024], vs[i%1024])
	}
}
