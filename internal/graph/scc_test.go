package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSCCSimpleCycle(t *testing.T) {
	g := New(4)
	g.AddNodes(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0) // cycle {0,1,2}
	g.AddEdge(2, 3) // 3 is its own SCC
	comps := g.StronglyConnectedComponents()
	want := [][]int{{0, 1, 2}, {3}}
	if !reflect.DeepEqual(comps, want) {
		t.Fatalf("SCCs = %v; want %v", comps, want)
	}
}

func TestSCCDAGAllSingletons(t *testing.T) {
	g := New(5)
	g.AddNodes(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 3)
	g.AddEdge(3, 4)
	comps := g.StronglyConnectedComponents()
	if len(comps) != 5 {
		t.Fatalf("DAG SCC count = %d", len(comps))
	}
}

func TestSCCTwoCycles(t *testing.T) {
	g := New(6)
	g.AddNodes(6)
	// Cycle A: 0<->1, cycle B: 3->4->5->3, bridge 1->3.
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 3)
	comps := g.StronglyConnectedComponents()
	want := [][]int{{0, 1}, {2}, {3, 4, 5}}
	if !reflect.DeepEqual(comps, want) {
		t.Fatalf("SCCs = %v; want %v", comps, want)
	}
}

func TestSCCDeepChainNoStackOverflow(t *testing.T) {
	// 200k-node chain would blow a recursive Tarjan.
	n := 200000
	g := New(n)
	g.AddNodes(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	comps := g.StronglyConnectedComponents()
	if len(comps) != n {
		t.Fatalf("components = %d", len(comps))
	}
}

func TestCondensationStats(t *testing.T) {
	g := New(5)
	g.AddNodes(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(2, 3)
	st := g.Condensation()
	if st.Components != 4 || st.LargestSCC != 2 || st.CyclicNodes != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.CyclicShare != 0.4 {
		t.Fatalf("share = %v", st.CyclicShare)
	}
}

func TestCondensationEmpty(t *testing.T) {
	st := New(0).Condensation()
	if st.Components != 0 || st.CyclicShare != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// Property: SCCs partition the node set, and any two nodes in the
// same SCC reach each other.
func TestSCCPartitionAndMutualReachProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := New(n)
		g.AddNodes(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		comps := g.StronglyConnectedComponents()
		seen := map[int]int{}
		total := 0
		for _, c := range comps {
			for _, v := range c {
				seen[v]++
				total++
			}
		}
		if total != n || len(seen) != n {
			return false
		}
		// Mutual reachability inside each non-trivial SCC (sampled).
		for _, c := range comps {
			if len(c) < 2 {
				continue
			}
			a, b := c[0], c[len(c)-1]
			if !g.HasDirectedPath([]int{a}, []int{b}) ||
				!g.HasDirectedPath([]int{b}, []int{a}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
