package graph

import "sort"

// StronglyConnectedComponents returns the SCCs of g (Tarjan's
// algorithm, iterative to survive deep graphs), each sorted
// ascending, ordered by smallest member.
//
// SCCs explain the refinement procedure's fixed points: Algorithm 5.4
// step 8b keeps the ancestors of detected nodes, so when the detected
// nodes sit inside a large strongly connected component the induced
// subgraph cannot shrink (every member is an ancestor of every other).
// The paper hits exactly this on GOFFGRATCH ("the induced subgraph
// equals the community subgraph", §6.3); CondensationStats quantifies
// it.
func (g *Digraph) StronglyConnectedComponents() [][]int {
	n := g.NumNodes()
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int32
	var comps [][]int
	next := int32(0)

	// Iterative Tarjan: frame holds the vertex and the position within
	// its adjacency list.
	type frame struct {
		v  int32
		ai int
	}
	var callStack []frame
	for s := 0; s < n; s++ {
		if index[s] != -1 {
			continue
		}
		callStack = append(callStack[:0], frame{v: int32(s)})
		index[s] = next
		low[s] = next
		next++
		stack = append(stack, int32(s))
		onStack[s] = true
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			adj := g.out[f.v]
			if f.ai < len(adj) {
				w := adj[f.ai]
				f.ai++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{v: w})
				} else if onStack[w] {
					if index[w] < low[f.v] {
						low[f.v] = index[w]
					}
				}
				continue
			}
			// Post-order: pop.
			v := f.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := &callStack[len(callStack)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, int(w))
					if w == v {
						break
					}
				}
				sort.Ints(comp)
				comps = append(comps, comp)
			}
		}
	}
	// Order by smallest member for determinism.
	sortComps(comps)
	return comps
}

func sortComps(comps [][]int) {
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
}

// CondensationStats summarizes the SCC structure relevant to
// refinement: the size of the largest SCC and the fraction of nodes in
// non-trivial (size > 1) components.
type CondensationStats struct {
	Components  int
	LargestSCC  int
	CyclicNodes int
	CyclicShare float64
}

// Condensation returns the SCC summary of g.
func (g *Digraph) Condensation() CondensationStats {
	comps := g.StronglyConnectedComponents()
	st := CondensationStats{Components: len(comps)}
	for _, c := range comps {
		if len(c) > st.LargestSCC {
			st.LargestSCC = len(c)
		}
		if len(c) > 1 {
			st.CyclicNodes += len(c)
		}
	}
	if n := g.NumNodes(); n > 0 {
		st.CyclicShare = float64(st.CyclicNodes) / float64(n)
	}
	return st
}
