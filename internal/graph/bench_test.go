package graph

import (
	"math/rand"
	"testing"
)

func randomGraph(n, m int, seed int64) *Digraph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	g.AddNodes(n)
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

func BenchmarkBFSFrom(b *testing.B) {
	g := randomGraph(5000, 20000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFSFrom(i % 5000)
	}
}

func BenchmarkAncestors(b *testing.B) {
	g := randomGraph(5000, 20000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Ancestors([]int{i % 5000})
	}
}

func BenchmarkSubgraph(b *testing.B) {
	g := randomGraph(5000, 20000, 3)
	keep := make([]int, 0, 2500)
	for i := 0; i < 5000; i += 2 {
		keep = append(keep, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Subgraph(keep)
	}
}

func BenchmarkWeaklyConnectedComponents(b *testing.B) {
	g := randomGraph(5000, 8000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.WeaklyConnectedComponents()
	}
}

func BenchmarkQuotient(b *testing.B) {
	g := randomGraph(5000, 20000, 5)
	part := make([]int, 5000)
	for i := range part {
		part[i] = i % 100
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Quotient(part, 100)
	}
}
