package graph

// This file implements the frozen CSR (compressed sparse row) snapshot
// the parallel graph kernels consume. A Digraph is a mutable,
// map-backed builder; a CSR is an immutable flat view of it — offsets
// and targets in contiguous []int32 slices, a stable edge id per
// directed edge, an undirected edge id shared by the two orientations
// of a symmetric pair, and an open-addressed flat hash table for O(1)
// edge lookup without the builder's map[uint64]struct{} edge set.
//
// Kernels (Brandes betweenness, Girvan-Newman, eigenvector power
// iteration) freeze the graph once per slice/contract and then operate
// on flat arrays only: no per-BFS map allocations, no pointer chasing,
// and edge scores live in []float64 indexed by edge id.

// CSR is an immutable compressed-sparse-row snapshot of a Digraph.
//
// Directed edge ids are assigned by flattening the out-adjacency in
// (source id, insertion order) order: the edge stored at out-slot k has
// id k. The id order is therefore exactly the Digraph.Edges iteration
// order, which keeps every CSR-based kernel's accumulation order
// identical to the adjacency-list code it replaced.
//
// For symmetric graphs (u->v implies v->u, the undirected view the
// community kernels take), the two orientations of each undirected edge
// share an undirected edge id; Brandes accumulators index by it.
type CSR struct {
	n int

	outOff []int32 // len n+1; out-slots of u are [outOff[u], outOff[u+1])
	outTo  []int32 // len m; target of each out-slot (edge id = slot)

	inOff  []int32 // len n+1; in-slots of v are [inOff[v], inOff[v+1])
	inFrom []int32 // len m; source of each in-slot
	inEID  []int32 // len m; directed edge id of each in-slot

	edgeU, edgeV []int32 // endpoints by directed edge id

	undirID []int32 // directed edge id -> undirected edge id
	undirU  []int32 // canonical (min) endpoint by undirected edge id
	undirV  []int32 // canonical (max) endpoint by undirected edge id

	// Open-addressed edge index: htIDs[i] is the directed edge id whose
	// packed (u,v) key is htKeys[i], or -1 when the slot is empty.
	htKeys []uint64
	htIDs  []int32
	htMask uint64
}

// Freeze builds the CSR snapshot of g. The snapshot is immutable and
// safe for concurrent use; later mutations of g are not reflected.
func Freeze(g *Digraph) *CSR {
	n := g.NumNodes()
	m := g.NumEdges()
	c := &CSR{
		n:       n,
		outOff:  make([]int32, n+1),
		outTo:   make([]int32, 0, m),
		inOff:   make([]int32, n+1),
		inFrom:  make([]int32, m),
		inEID:   make([]int32, m),
		edgeU:   make([]int32, 0, m),
		edgeV:   make([]int32, 0, m),
		undirID: make([]int32, m),
	}
	for u := 0; u < n; u++ {
		c.outOff[u] = int32(len(c.outTo))
		for _, v := range g.out[u] {
			c.outTo = append(c.outTo, v)
			c.edgeU = append(c.edgeU, int32(u))
			c.edgeV = append(c.edgeV, v)
		}
	}
	c.outOff[n] = int32(len(c.outTo))

	// In-adjacency, preserving the builder's per-node insertion order.
	// Fill positions from a running cursor per node.
	for v := 0; v < n; v++ {
		c.inOff[v+1] = c.inOff[v] + int32(len(g.in[v]))
	}
	cursor := make([]int32, n)
	copy(cursor, c.inOff[:n])
	// Walk edges in id order; for edge (u,v) find its in-slot. The
	// builder appends to in[v] in global insertion order, which is not
	// id order (ids are grouped by source), so record slots per (v)
	// using the original in-lists.
	// First, index each in-list entry's edge id via the edge table.
	c.buildEdgeIndex()
	for v := 0; v < n; v++ {
		for _, u := range g.in[v] {
			slot := cursor[v]
			cursor[v]++
			c.inFrom[slot] = u
			c.inEID[slot] = c.EdgeID(int(u), v)
		}
	}

	// Undirected edge ids: canonical (min,max) pairs numbered in first-
	// appearance (directed edge id) order. The reverse orientation, when
	// present, shares the id.
	next := int32(0)
	for id := 0; id < m; id++ {
		u, v := c.edgeU[id], c.edgeV[id]
		if rev := c.EdgeID(int(v), int(u)); rev >= 0 && rev < int32(id) {
			c.undirID[id] = c.undirID[rev]
			continue
		}
		c.undirID[id] = next
		if u <= v {
			c.undirU = append(c.undirU, u)
			c.undirV = append(c.undirV, v)
		} else {
			c.undirU = append(c.undirU, v)
			c.undirV = append(c.undirV, u)
		}
		next++
	}
	return c
}

// buildEdgeIndex fills the open-addressed (u,v) -> edge id table. The
// table is sized to a power of two at most half full, so lookups are
// expected O(1) with short linear probes.
func (c *CSR) buildEdgeIndex() {
	size := uint64(4)
	for size < 2*uint64(len(c.outTo))+1 {
		size <<= 1
	}
	c.htKeys = make([]uint64, size)
	c.htIDs = make([]int32, size)
	c.htMask = size - 1
	for i := range c.htIDs {
		c.htIDs[i] = -1
	}
	for id, v := range c.outTo {
		key := pack(c.edgeU[id], v)
		slot := mix64(key) & c.htMask
		for c.htIDs[slot] >= 0 {
			slot = (slot + 1) & c.htMask
		}
		c.htKeys[slot] = key
		c.htIDs[slot] = int32(id)
	}
}

// mix64 is the splitmix64 finalizer — a cheap, well-distributed hash
// for packed edge keys.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NumNodes returns the node count.
func (c *CSR) NumNodes() int { return c.n }

// NumEdges returns the directed edge count.
func (c *CSR) NumEdges() int { return len(c.outTo) }

// NumUndirEdges returns the number of undirected edge ids (symmetric
// pairs collapsed; one-directional edges and self-loops count once).
func (c *CSR) NumUndirEdges() int { return len(c.undirU) }

// Out returns the out-neighbor targets of u; the out-slot (and thus
// directed edge id) of Out(u)[i] is OutStart(u)+i. The slice must not
// be modified.
func (c *CSR) Out(u int) []int32 { return c.outTo[c.outOff[u]:c.outOff[u+1]] }

// OutStart returns the first out-slot (= directed edge id) of u.
func (c *CSR) OutStart(u int) int32 { return c.outOff[u] }

// In returns the in-neighbor sources of v. The slice must not be
// modified; InEdgeIDs gives the matching directed edge ids.
func (c *CSR) In(v int) []int32 { return c.inFrom[c.inOff[v]:c.inOff[v+1]] }

// InStart returns the first in-slot of v; in-slots are the natural
// per-node regions for predecessor storage (a BFS predecessor of v is
// always one of its in-neighbors).
func (c *CSR) InStart(v int) int32 { return c.inOff[v] }

// InEdgeIDs returns the directed edge ids matching In(v).
func (c *CSR) InEdgeIDs(v int) []int32 { return c.inEID[c.inOff[v]:c.inOff[v+1]] }

// EdgeID returns the directed edge id of u->v, or -1 when absent.
// Expected O(1): a flat-table hash probe, no map access.
func (c *CSR) EdgeID(u, v int) int32 {
	key := pack(int32(u), int32(v))
	slot := mix64(key) & c.htMask
	for {
		id := c.htIDs[slot]
		if id < 0 {
			return -1
		}
		if c.htKeys[slot] == key {
			return id
		}
		slot = (slot + 1) & c.htMask
	}
}

// HasEdge reports whether the directed edge u->v exists.
func (c *CSR) HasEdge(u, v int) bool { return c.EdgeID(u, v) >= 0 }

// Endpoints returns the (source, target) of a directed edge id.
func (c *CSR) Endpoints(id int32) (int32, int32) { return c.edgeU[id], c.edgeV[id] }

// UndirID returns the undirected edge id of a directed edge id.
func (c *CSR) UndirID(id int32) int32 { return c.undirID[id] }

// UndirEndpoints returns the canonical (min, max) endpoints of an
// undirected edge id.
func (c *CSR) UndirEndpoints(id int32) (int32, int32) { return c.undirU[id], c.undirV[id] }
