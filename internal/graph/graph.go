// Package graph provides the directed-graph substrate used by the root
// cause analysis pipeline: construction, traversal, subgraph induction,
// quotient graphs (graph minors), and structural queries.
//
// The package plays the role NetworkX plays in the paper (Milroy et al.,
// HPDC 2019, §4.2): the metagraph's digraph component. Nodes are dense
// integer identifiers; callers attach their own metadata tables keyed by
// node id.
package graph

import (
	"fmt"
	"sort"
)

// Digraph is a directed graph over dense node ids [0, N).
//
// The zero value is an empty graph ready to use. Parallel edges are
// collapsed (an edge is stored once) and self-loops are permitted but
// ignored by the traversal helpers that compute shortest paths.
type Digraph struct {
	out   [][]int32
	in    [][]int32
	edges int
	// edgeSet dedupes edges during construction. Keyed by packed (u,v).
	edgeSet map[uint64]struct{}
}

// New returns an empty digraph with capacity hints for n nodes.
func New(n int) *Digraph {
	return &Digraph{
		out:     make([][]int32, 0, n),
		in:      make([][]int32, 0, n),
		edgeSet: make(map[uint64]struct{}, 2*n),
	}
}

func pack(u, v int32) uint64 { return uint64(uint32(u))<<32 | uint64(uint32(v)) }

// AddNode adds a new node and returns its id.
func (g *Digraph) AddNode() int {
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return len(g.out) - 1
}

// AddNodes adds k nodes and returns the id of the first.
func (g *Digraph) AddNodes(k int) int {
	first := len(g.out)
	for i := 0; i < k; i++ {
		g.AddNode()
	}
	return first
}

// AddEdge inserts the directed edge u->v. Duplicate edges are ignored.
// It panics if either endpoint is out of range, matching the contract of
// slice indexing so that construction bugs fail loudly.
func (g *Digraph) AddEdge(u, v int) {
	if u < 0 || u >= len(g.out) || v < 0 || v >= len(g.out) {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, len(g.out)))
	}
	if g.edgeSet == nil {
		g.edgeSet = make(map[uint64]struct{})
	}
	key := pack(int32(u), int32(v))
	if _, dup := g.edgeSet[key]; dup {
		return
	}
	g.edgeSet[key] = struct{}{}
	g.out[u] = append(g.out[u], int32(v))
	g.in[v] = append(g.in[v], int32(u))
	g.edges++
}

// HasEdge reports whether the directed edge u->v exists.
func (g *Digraph) HasEdge(u, v int) bool {
	if g.edgeSet != nil {
		_, ok := g.edgeSet[pack(int32(u), int32(v))]
		return ok
	}
	for _, w := range g.out[u] {
		if int(w) == v {
			return true
		}
	}
	return false
}

// NumNodes returns the node count.
func (g *Digraph) NumNodes() int { return len(g.out) }

// NumEdges returns the directed edge count.
func (g *Digraph) NumEdges() int { return g.edges }

// Out returns the out-neighbors of u. The slice must not be modified.
func (g *Digraph) Out(u int) []int32 { return g.out[u] }

// In returns the in-neighbors of u. The slice must not be modified.
func (g *Digraph) In(u int) []int32 { return g.in[u] }

// OutDegree returns the out-degree of u.
func (g *Digraph) OutDegree(u int) int { return len(g.out[u]) }

// InDegree returns the in-degree of u.
func (g *Digraph) InDegree(u int) int { return len(g.in[u]) }

// Degree returns the total (in+out) degree of u.
func (g *Digraph) Degree(u int) int { return len(g.out[u]) + len(g.in[u]) }

// Edges calls fn for every directed edge (u, v). Iteration order is
// deterministic: by source id, then insertion order.
func (g *Digraph) Edges(fn func(u, v int)) {
	for u := range g.out {
		for _, v := range g.out[u] {
			fn(u, int(v))
		}
	}
}

// Clone returns a deep copy of g.
func (g *Digraph) Clone() *Digraph {
	c := New(g.NumNodes())
	c.AddNodes(g.NumNodes())
	g.Edges(func(u, v int) { c.AddEdge(u, v) })
	return c
}

// Reverse returns a new digraph with every edge direction flipped.
func (g *Digraph) Reverse() *Digraph {
	r := New(g.NumNodes())
	r.AddNodes(g.NumNodes())
	g.Edges(func(u, v int) { r.AddEdge(v, u) })
	return r
}

// Undirected returns the symmetric closure of g: for every edge u->v the
// result has both u->v and v->u. This is the weakly-connected view the
// paper feeds to Girvan-Newman (§5.2).
func (g *Digraph) Undirected() *Digraph {
	u := New(g.NumNodes())
	u.AddNodes(g.NumNodes())
	g.Edges(func(a, b int) {
		if a == b {
			return
		}
		u.AddEdge(a, b)
		u.AddEdge(b, a)
	})
	return u
}

// Subgraph induces the subgraph on keep (a set of node ids of g). It
// returns the new graph and a mapping newToOld where newToOld[i] is the
// id in g of node i in the subgraph. Nodes in keep appear in ascending
// id order so the mapping is deterministic.
func (g *Digraph) Subgraph(keep []int) (*Digraph, []int) {
	nodes := append([]int(nil), keep...)
	sort.Ints(nodes)
	// Dedup.
	nodes = dedupSortedInts(nodes)
	oldToNew := make(map[int]int, len(nodes))
	for i, v := range nodes {
		oldToNew[v] = i
	}
	s := New(len(nodes))
	s.AddNodes(len(nodes))
	for i, v := range nodes {
		for _, w := range g.out[v] {
			if j, ok := oldToNew[int(w)]; ok {
				s.AddEdge(i, j)
			}
		}
	}
	return s, nodes
}

func dedupSortedInts(xs []int) []int {
	if len(xs) == 0 {
		return xs
	}
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// RemoveEdge deletes the directed edge u->v if present. It reports
// whether an edge was removed. Removal is O(degree).
func (g *Digraph) RemoveEdge(u, v int) bool {
	if !g.HasEdge(u, v) {
		return false
	}
	delete(g.edgeSet, pack(int32(u), int32(v)))
	g.out[u] = removeFirst(g.out[u], int32(v))
	g.in[v] = removeFirst(g.in[v], int32(u))
	g.edges--
	return true
}

func removeFirst(s []int32, x int32) []int32 {
	for i, v := range s {
		if v == x {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// DegreeDistribution returns a histogram where hist[d] is the number of
// nodes with total degree d (Figures 4, 9, 10 of the paper).
func (g *Digraph) DegreeDistribution() map[int]int {
	hist := make(map[int]int)
	for u := range g.out {
		hist[g.Degree(u)]++
	}
	return hist
}

// Quotient collapses g by the equivalence classes in part: part[u] is the
// class index of node u in [0, numClasses). Edges between members of the
// same class are dropped; edges between classes are collapsed. This is
// the graph minor of §6.5 used to rank modules.
func (g *Digraph) Quotient(part []int, numClasses int) *Digraph {
	if len(part) != g.NumNodes() {
		panic("graph: partition length mismatch")
	}
	q := New(numClasses)
	q.AddNodes(numClasses)
	g.Edges(func(u, v int) {
		cu, cv := part[u], part[v]
		if cu != cv {
			q.AddEdge(cu, cv)
		}
	})
	return q
}
