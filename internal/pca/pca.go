// Package pca implements principal component analysis via a cyclic
// Jacobi eigensolver for symmetric matrices. It is the numerical core
// of the ensemble consistency test (internal/ect), standing in for the
// PCA machinery of pyCECT (Baker et al. 2015).
package pca

import (
	"errors"
	"math"
	"sort"
)

// SymEig computes the eigendecomposition of the symmetric n×n matrix a
// (row-major, length n*n) using the cyclic Jacobi method. It returns
// eigenvalues in descending order and the corresponding eigenvectors as
// rows of vecs (vecs[k*n:(k+1)*n] is the unit eigenvector for vals[k]).
// The input slice is not modified.
func SymEig(a []float64, n int) (vals []float64, vecs []float64, err error) {
	if n < 0 || len(a) != n*n {
		return nil, nil, errors.New("pca: matrix size mismatch")
	}
	if n == 0 {
		return nil, nil, nil
	}
	m := append([]float64(nil), a...)
	v := make([]float64, n*n)
	for i := 0; i < n; i++ {
		v[i*n+i] = 1
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(m, n)
		if off < 1e-14 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m[p*n+q]
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := m[p*n+p]
				aqq := m[q*n+q]
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(m, n, p, q, c, s)
				rotateVecs(v, n, p, q, c, s)
			}
		}
	}
	// Extract eigenvalues (diagonal) and sort descending.
	type pair struct {
		val float64
		idx int
	}
	ps := make([]pair, n)
	for i := 0; i < n; i++ {
		ps[i] = pair{m[i*n+i], i}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].val > ps[j].val })
	vals = make([]float64, n)
	vecs = make([]float64, n*n)
	for k, p := range ps {
		vals[k] = p.val
		for i := 0; i < n; i++ {
			// Column p.idx of v is the eigenvector; store as row k.
			vecs[k*n+i] = v[i*n+p.idx]
		}
	}
	return vals, vecs, nil
}

func offDiagNorm(m []float64, n int) float64 {
	var s float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s += m[i*n+j] * m[i*n+j]
		}
	}
	return math.Sqrt(2 * s)
}

// rotate applies the Jacobi rotation J(p,q,c,s) to m: m = JᵀmJ.
func rotate(m []float64, n, p, q int, c, s float64) {
	for i := 0; i < n; i++ {
		mip := m[i*n+p]
		miq := m[i*n+q]
		m[i*n+p] = c*mip - s*miq
		m[i*n+q] = s*mip + c*miq
	}
	for j := 0; j < n; j++ {
		mpj := m[p*n+j]
		mqj := m[q*n+j]
		m[p*n+j] = c*mpj - s*mqj
		m[q*n+j] = s*mpj + c*mqj
	}
}

func rotateVecs(v []float64, n, p, q int, c, s float64) {
	for i := 0; i < n; i++ {
		vip := v[i*n+p]
		viq := v[i*n+q]
		v[i*n+p] = c*vip - s*viq
		v[i*n+q] = s*vip + c*viq
	}
}

// Model is a fitted PCA basis over d variables.
type Model struct {
	D          int       // number of variables
	Mean       []float64 // per-variable mean of the training matrix
	Std        []float64 // per-variable std (n-1); zeros replaced by 1
	Components []float64 // row-major K×D loading matrix (rows are PCs)
	Eigvals    []float64 // descending eigenvalues of the correlation matrix
	K          int       // number of retained components
}

// Fit computes a PCA of the rows of x (n samples × d variables,
// row-major), standardizing each variable first (so the decomposition is
// of the correlation matrix, as pyCECT does with global means). keep
// limits the number of retained components; keep <= 0 retains min(n-1, d).
func Fit(x []float64, n, d, keep int) (*Model, error) {
	if n < 2 || d < 1 || len(x) != n*d {
		return nil, errors.New("pca: bad training matrix shape")
	}
	mean := make([]float64, d)
	std := make([]float64, d)
	for j := 0; j < d; j++ {
		var s float64
		for i := 0; i < n; i++ {
			s += x[i*d+j]
		}
		mean[j] = s / float64(n)
	}
	for j := 0; j < d; j++ {
		var s float64
		for i := 0; i < n; i++ {
			dv := x[i*d+j] - mean[j]
			s += dv * dv
		}
		std[j] = math.Sqrt(s / float64(n-1))
		if std[j] == 0 {
			std[j] = 1
		}
	}
	// Correlation matrix C = Zᵀ Z / (n-1).
	c := make([]float64, d*d)
	z := make([]float64, n*d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			z[i*d+j] = (x[i*d+j] - mean[j]) / std[j]
		}
	}
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			var s float64
			for i := 0; i < n; i++ {
				s += z[i*d+a] * z[i*d+b]
			}
			s /= float64(n - 1)
			c[a*d+b] = s
			c[b*d+a] = s
		}
	}
	vals, vecs, err := SymEig(c, d)
	if err != nil {
		return nil, err
	}
	maxK := n - 1
	if d < maxK {
		maxK = d
	}
	if keep <= 0 || keep > maxK {
		keep = maxK
	}
	return &Model{
		D:          d,
		Mean:       mean,
		Std:        std,
		Components: vecs[:keep*d],
		Eigvals:    vals,
		K:          keep,
	}, nil
}

// Scores projects a single d-vector onto the retained components,
// returning K PC scores.
func (m *Model) Scores(row []float64) []float64 {
	out := make([]float64, m.K)
	for k := 0; k < m.K; k++ {
		var s float64
		for j := 0; j < m.D; j++ {
			s += m.Components[k*m.D+j] * (row[j] - m.Mean[j]) / m.Std[j]
		}
		out[k] = s
	}
	return out
}
