package pca

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSymEigDiagonal(t *testing.T) {
	a := []float64{
		3, 0, 0,
		0, 1, 0,
		0, 0, 2,
	}
	vals, vecs, err := SymEig(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("vals = %v", vals)
		}
	}
	// First eigenvector should be +-e0.
	if math.Abs(math.Abs(vecs[0])-1) > 1e-9 {
		t.Fatalf("vec0 = %v", vecs[:3])
	}
}

func TestSymEigKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	vals, vecs, err := SymEig([]float64{2, 1, 1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-12 || math.Abs(vals[1]-1) > 1e-12 {
		t.Fatalf("vals = %v", vals)
	}
	// Eigenvector for 3 is (1,1)/sqrt2 up to sign.
	r := vecs[0] / vecs[1]
	if math.Abs(r-1) > 1e-9 {
		t.Fatalf("vec ratio = %v", r)
	}
}

func TestSymEigErrors(t *testing.T) {
	if _, _, err := SymEig([]float64{1, 2}, 3); err == nil {
		t.Fatal("size mismatch accepted")
	}
	vals, vecs, err := SymEig(nil, 0)
	if err != nil || vals != nil || vecs != nil {
		t.Fatalf("empty matrix: %v %v %v", vals, vecs, err)
	}
}

// Property: A v = λ v for every returned pair on random symmetric
// matrices, and eigenvalues are sorted descending.
func TestSymEigResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a[i*n+j] = v
				a[j*n+i] = v
			}
		}
		vals, vecs, err := SymEig(a, n)
		if err != nil {
			return false
		}
		for k := 0; k < n; k++ {
			if k > 0 && vals[k] > vals[k-1]+1e-9 {
				return false
			}
			for i := 0; i < n; i++ {
				var av float64
				for j := 0; j < n; j++ {
					av += a[i*n+j] * vecs[k*n+j]
				}
				if math.Abs(av-vals[k]*vecs[k*n+i]) > 1e-7 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFitRecoversDominantDirection(t *testing.T) {
	// Data along direction (1,1) with small noise: PC1 loading should
	// be ~(±1/√2, ±1/√2) and eigenvalue ratio large.
	rng := rand.New(rand.NewSource(11))
	n, d := 200, 2
	x := make([]float64, n*d)
	for i := 0; i < n; i++ {
		s := rng.NormFloat64() * 10
		x[i*d] = s + rng.NormFloat64()*0.1
		x[i*d+1] = s + rng.NormFloat64()*0.1
	}
	m, err := Fit(x, n, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.K != 2 {
		t.Fatalf("K = %d", m.K)
	}
	r := m.Components[0] / m.Components[1]
	if math.Abs(r-1) > 0.05 {
		t.Fatalf("PC1 loadings ratio = %v", r)
	}
	if m.Eigvals[0] < 10*m.Eigvals[1] {
		t.Fatalf("eigenvalue separation too small: %v", m.Eigvals)
	}
}

func TestFitShapeErrors(t *testing.T) {
	if _, err := Fit([]float64{1, 2, 3}, 1, 3, 0); err == nil {
		t.Fatal("n<2 accepted")
	}
	if _, err := Fit([]float64{1, 2, 3}, 2, 2, 0); err == nil {
		t.Fatal("bad length accepted")
	}
}

func TestFitKeepClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, d := 4, 6
	x := make([]float64, n*d)
	for i := range x {
		x[i] = rng.Float64()
	}
	m, err := Fit(x, n, d, 99)
	if err != nil {
		t.Fatal(err)
	}
	if m.K != n-1 {
		t.Fatalf("K = %d; want %d", m.K, n-1)
	}
}

func TestScoresCentering(t *testing.T) {
	// Scoring the mean row gives all-zero scores.
	rng := rand.New(rand.NewSource(2))
	n, d := 30, 4
	x := make([]float64, n*d)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	m, err := Fit(x, n, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Scores(m.Mean)
	for _, v := range s {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("mean-row scores = %v", s)
		}
	}
}

// Property: ensemble scores have (near) zero mean per component.
func TestScoresZeroMeanProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		d := 2 + rng.Intn(5)
		x := make([]float64, n*d)
		for i := range x {
			x[i] = rng.NormFloat64()*3 + 1
		}
		m, err := Fit(x, n, d, 0)
		if err != nil {
			return false
		}
		sums := make([]float64, m.K)
		for i := 0; i < n; i++ {
			for k, s := range m.Scores(x[i*d : (i+1)*d]) {
				sums[k] += s
			}
		}
		for _, s := range sums {
			if math.Abs(s)/float64(n) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
