package core

import (
	"testing"

	"github.com/climate-rca/rca/internal/graph"
)

func TestMagnitudeSamplerRanksByDifference(t *testing.T) {
	keys := map[int]string{1: "a", 2: "b", 3: "c"}
	keyOf := func(n int) string { return keys[n] }
	ens := map[string][]float64{"a": {1}, "b": {1}, "c": {1}}
	exp := map[string][]float64{"a": {1.5}, "b": {1.01}, "c": {1}}
	g := MagnitudeSampler(keyOf, ens, exp)
	diffs := g.Differences([]int{1, 2, 3})
	if len(diffs) != 3 {
		t.Fatalf("diffs = %+v", diffs)
	}
	if diffs[0].Node != 1 || diffs[1].Node != 2 || diffs[2].Node != 3 {
		t.Fatalf("rank order = %+v", diffs)
	}
	if diffs[2].Magnitude != 0 {
		t.Fatalf("identical values magnitude = %v", diffs[2].Magnitude)
	}
}

func TestValueSamplerDelegatesToMagnitudes(t *testing.T) {
	keys := map[int]string{1: "a", 2: "b"}
	keyOf := func(n int) string { return keys[n] }
	ens := map[string][]float64{"a": {1}, "b": {1}}
	exp := map[string][]float64{"a": {2}, "b": {1}}
	s := ValueSampler(keyOf, ens, exp, 1e-12)
	got := s.Sample([]int{1, 2})
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("detected = %v", got)
	}
}

// TestRefineWithMagnitudesBreaksFixedPoint constructs the §6.3
// situation: a complete digraph where every node reaches every
// sampled node, so plain 8b contraction is a fixed point — while the
// graded sampler's greatest-difference contraction keeps narrowing.
func TestRefineWithMagnitudesBreaksFixedPoint(t *testing.T) {
	n := 30
	g := graph.New(n)
	g.AddNodes(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				g.AddEdge(i, j)
			}
		}
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	// Node 7 is the defect: its magnitude dominates; everything else
	// differs slightly (all downstream of the bug in a complete graph).
	graded := func(nodes []int) []Difference {
		var out []Difference
		for _, v := range nodes {
			mag := 1e-6
			if v == 7 {
				mag = 1.0
			}
			out = append(out, Difference{Node: v, Magnitude: mag})
		}
		// Descending magnitude, bug first.
		for i := range out {
			if out[i].Node == 7 {
				out[0], out[i] = out[i], out[0]
			}
		}
		return out
	}

	// Plain Refine hits the fixed point.
	plain, _ := Refine(g.Clone(), ids, SamplerFunc(func(nodes []int) []int { return nodes }),
		[]int{7}, Options{SmallEnough: 2, MaxIterations: 6})
	hitFixed := false
	for _, it := range plain.Iterations {
		if it.Action == ActionFixedPoint {
			hitFixed = true
		}
	}
	if !hitFixed && !plain.BugInstrumented {
		t.Fatalf("expected plain refinement to stall: %+v", plain.Iterations)
	}

	// Magnitude-aware refinement converges on the defect.
	res, _ := RefineWithMagnitudes(g, ids, GradedSamplerFunc(graded), []int{7},
		Options{SmallEnough: 2, MaxIterations: 8})
	if !res.Converged {
		t.Fatalf("magnitude refinement did not converge: %+v", res.Iterations)
	}
	found := res.BugInstrumented
	for _, v := range res.Final {
		if v == 7 {
			found = true
		}
	}
	if !found {
		t.Fatalf("defect lost: final=%v instrumented=%v", res.Final, res.BugInstrumented)
	}
}
