package core

import (
	"testing"
)

func TestRefineLouvainVariant(t *testing.T) {
	g, ids := twoCommunityGraph(20)
	bug := []int{3}
	res, _ := Refine(g, ids, ReachabilitySampler(g, bug), bug,
		Options{SmallEnough: 5, CommunityMethod: "louvain"})
	if !res.Converged {
		t.Fatalf("louvain refinement did not converge: %+v", res)
	}
	found := res.BugInstrumented
	for _, n := range res.Final {
		if n == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("louvain variant lost the bug: %+v", res)
	}
}

func TestRefineReportsLargestSCC(t *testing.T) {
	// A directed cycle of 12 with an appendage: the cycle is one SCC.
	n := 40
	g, ids := twoCommunityGraph(n / 2)
	// Add a back edge creating a cycle in cluster 1.
	g.AddEdge(10, 0)
	res, _ := Refine(g, ids, SamplerFunc(func([]int) []int { return nil }), nil,
		Options{SmallEnough: 4, MaxIterations: 1})
	if len(res.Iterations) == 0 {
		t.Fatal("no iterations")
	}
	if res.Iterations[0].LargestSCC < 2 {
		t.Fatalf("largest SCC = %d; want >= 2 (cycle present)",
			res.Iterations[0].LargestSCC)
	}
}

func TestRankByDispatch(t *testing.T) {
	g, _ := twoCommunityGraph(6)
	for _, kind := range []string{"", "eigen-in", "degree", "pagerank", "nonbacktracking", "unknown"} {
		scores := rankBy(kind, g, 2)
		if len(scores) != g.NumNodes() {
			t.Fatalf("%s: scores = %d", kind, len(scores))
		}
		for _, s := range scores {
			if s < 0 {
				t.Fatalf("%s: negative score", kind)
			}
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.TopM != 10 || o.GNIterations != 1 || o.MinCommunity != 3 ||
		o.MaxIterations != 8 || o.SmallEnough != 25 {
		t.Fatalf("defaults = %+v", o)
	}
}
