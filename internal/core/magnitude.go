package core

import "github.com/climate-rca/rca/internal/graph"

// RefineWithMagnitudes runs Algorithm 5.4 augmented with the paper's
// §6.3 future-work extension: when the plain 8b contraction would hit
// a fixed point (the induced subgraph equals the current one), the
// procedure instead contracts to the ancestors of the single sampled
// node with the greatest value difference, which keeps the k-ary
// search moving. All other behaviour matches Refine.
func RefineWithMagnitudes(sub *graph.Digraph, nodeMap []int, graded GradedSampler,
	bugNodes []int, opt Options) (*Result, error) {
	opt = opt.withDefaults()

	// Track the current subgraph size across sampler calls so the
	// wrapped sampler can detect impending fixed points. The wrapped
	// sampler behaves like a binary sampler, except that when every
	// node in the current subgraph would survive contraction it
	// returns only the top-magnitude node.
	type state struct {
		cur    *graph.Digraph
		curMap []int
	}
	st := &state{cur: sub, curMap: nodeMap}

	wrapped := func(nodes []int) []int {
		diffs := graded.Differences(nodes)
		var detected []int
		for _, d := range diffs {
			if d.Magnitude > 1e-12 {
				detected = append(detected, d.Node)
			}
		}
		if len(detected) == 0 {
			return nil
		}
		// Would contraction to detected ancestors be a fixed point?
		local := localIDs(detected, st.curMap)
		keep := st.cur.Ancestors(local)
		if len(keep) == st.cur.NumNodes() && len(diffs) > 0 {
			// Contract to the single greatest difference instead.
			return []int{diffs[0].Node}
		}
		return detected
	}

	// Refine with a hook that keeps st in sync: re-implement the loop
	// by delegating to Refine but updating st via the sampler's view.
	// Refine calls the sampler exactly once per iteration with the
	// sampled set of the *current* subgraph, so we refresh st lazily:
	// the first sampler call sees the initial graph; after each call
	// we recompute what Refine will contract to, mirroring its logic.
	syncSampler := func(nodes []int) []int {
		detected := wrapped(nodes)
		// Mirror Refine's step 8 to keep st current for the next call.
		var keepLocal []int
		if len(detected) == 0 {
			drop := map[int]bool{}
			for _, n := range st.cur.Ancestors(localIDs(nodes, st.curMap)) {
				drop[n] = true
			}
			for n := 0; n < st.cur.NumNodes(); n++ {
				if !drop[n] {
					keepLocal = append(keepLocal, n)
				}
			}
		} else {
			keepLocal = st.cur.Ancestors(localIDs(detected, st.curMap))
		}
		if len(keepLocal) > 0 && len(keepLocal) < st.cur.NumNodes() {
			next, nextLocal := st.cur.Subgraph(keepLocal)
			nextMap := make([]int, len(nextLocal))
			for i, l := range nextLocal {
				nextMap[i] = st.curMap[l]
			}
			st.cur, st.curMap = next, nextMap
		}
		return detected
	}
	return Refine(sub, nodeMap, SamplerFunc(syncSampler), bugNodes, opt)
}
