// Package core implements the paper's primary contribution: the
// iterative refinement procedure of Algorithm 5.4 (Milroy et al.,
// HPDC 2019 §5.4). Given the induced subgraph that computes the
// affected output variables, each iteration partitions the (weakly
// connected view of the) subgraph with Girvan-Newman, ranks each
// community's nodes by eigenvector in-centrality, "instruments" the
// top-m nodes per community, and contracts the subgraph based on
// which instrumented nodes take different values between the ensemble
// and experimental runs — a k-ary search over the code's dataflow.
package core

import (
	"sort"

	"github.com/climate-rca/rca/internal/centrality"
	"github.com/climate-rca/rca/internal/community"
	"github.com/climate-rca/rca/internal/graph"
)

// Options tunes Algorithm 5.4.
type Options struct {
	// TopM is the number of most-central nodes instrumented per
	// community (the paper uses 10; 3 for very small subgraphs).
	TopM int
	// GNIterations is the number of Girvan-Newman rounds per
	// refinement iteration (the paper uses 1, conservatively).
	GNIterations int
	// MinCommunity omits communities smaller than this many nodes
	// (the paper omits those under 3-4).
	MinCommunity int
	// MaxIterations caps the refinement loop.
	MaxIterations int
	// SmallEnough stops refinement once the subgraph is at most this
	// many nodes ("small enough for manual analysis").
	SmallEnough int
	// Centrality picks the sampling-site ranking: "eigen-in" (paper
	// default), "degree", "pagerank", or "nonbacktracking" (supplement
	// §8.1). Used by the ablation benches.
	Centrality string
	// WholeGraphSampling disables community detection and samples the
	// top-m nodes of the entire subgraph — the alternative §6.2 argues
	// against (the centrality-dominant community absorbs all samples).
	WholeGraphSampling bool
	// CommunityMethod picks the partitioner: "girvan-newman" (paper
	// default) or "louvain" (greedy modularity, much faster at paper
	// scale).
	CommunityMethod string
	// Checkpoint, when non-nil, is called at the top of every
	// refinement iteration; a non-nil return aborts the loop with that
	// error. The experiments layer wires per-call context cancellation
	// through it, so a canceled investigation stops between iterations
	// instead of running the loop to convergence.
	Checkpoint func() error
	// Parallelism bounds the worker pool the graph kernels (edge
	// betweenness, Girvan-Newman recomputation, eigenvector matvecs)
	// shard work across (default 1). Kernel results are bit-identical
	// at every parallelism level, so this is purely a wall-clock knob;
	// the Session defaults it to GOMAXPROCS via WithParallelism.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.TopM <= 0 {
		o.TopM = 10
	}
	if o.GNIterations <= 0 {
		o.GNIterations = 1
	}
	if o.MinCommunity <= 0 {
		o.MinCommunity = 3
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 8
	}
	if o.SmallEnough <= 0 {
		o.SmallEnough = 25
	}
	if o.Parallelism <= 0 {
		o.Parallelism = 1
	}
	return o
}

// Action records which Algorithm 5.4 branch an iteration took.
type Action string

// Refinement actions.
const (
	ActionContractToDetected Action = "8b" // keep ancestors of detected nodes
	ActionRemoveCleared      Action = "8a" // drop ancestors of clean nodes
	ActionBugInstrumented    Action = "bug-instrumented"
	ActionSmallEnough        Action = "small-enough"
	ActionNoCommunities      Action = "no-communities"
	ActionFixedPoint         Action = "fixed-point"
)

// Iteration is one round of the refinement loop, in metagraph ids.
type Iteration struct {
	Nodes, Edges int
	// LargestSCC is the size of the subgraph's largest strongly
	// connected component: when the detected nodes live inside it,
	// step 8b cannot contract (the fixed-point diagnosis).
	LargestSCC int
	// Communities are the G-N communities (metagraph ids), largest
	// first.
	Communities [][]int
	// Sampled are the instrumented nodes ({n_kl}), per community,
	// flattened; Detected is the subset with value differences
	// ({d_kl}).
	Sampled  []int
	Detected []int
	Action   Action
}

// Result is the outcome of the refinement procedure.
type Result struct {
	Iterations []Iteration
	// Final is the surviving node set (metagraph ids).
	Final []int
	// BugInstrumented reports whether a known bug node was among the
	// sampled nodes at some iteration (success criterion 2 of the
	// paper's step 9).
	BugInstrumented bool
	// Converged reports the loop ended via a success criterion rather
	// than the iteration cap.
	Converged bool
}

// Refine runs Algorithm 5.4 on the slice subgraph sub whose node i is
// metagraph node nodeMap[i]. sampler implements step 7; bugNodes (may
// be nil) are the known defect locations used only for the
// bug-instrumented success check in step 9. The only error source is
// opt.Checkpoint, evaluated between iterations.
func Refine(sub *graph.Digraph, nodeMap []int, sampler Sampler, bugNodes []int, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	bugSet := make(map[int]bool, len(bugNodes))
	for _, b := range bugNodes {
		bugSet[b] = true
	}
	res := &Result{}
	cur := sub
	curMap := append([]int(nil), nodeMap...)

	for iter := 0; iter < opt.MaxIterations; iter++ {
		if opt.Checkpoint != nil {
			if err := opt.Checkpoint(); err != nil {
				return nil, err
			}
		}
		it := Iteration{Nodes: cur.NumNodes(), Edges: cur.NumEdges()}
		it.LargestSCC = cur.Condensation().LargestSCC

		if cur.NumNodes() <= opt.SmallEnough {
			it.Action = ActionSmallEnough
			res.Iterations = append(res.Iterations, it)
			res.Final = append([]int(nil), curMap...)
			res.Converged = true
			return res, nil
		}

		// Step 5: communities of the undirected view.
		var comms [][]int
		if opt.WholeGraphSampling {
			all := make([]int, cur.NumNodes())
			for i := range all {
				all[i] = i
			}
			comms = [][]int{all}
		} else {
			und := cur.Undirected()
			if opt.CommunityMethod == "louvain" {
				comms = community.Louvain(und, 0, opt.MinCommunity)
			} else {
				comms = community.GirvanNewmanPar(und, opt.GNIterations, opt.MinCommunity, opt.Parallelism)
			}
		}
		if len(comms) == 0 {
			it.Action = ActionNoCommunities
			res.Iterations = append(res.Iterations, it)
			res.Final = append([]int(nil), curMap...)
			res.Converged = true
			return res, nil
		}
		for _, c := range comms {
			it.Communities = append(it.Communities, translate(c, curMap))
		}

		// Step 6: centrality per community, top-m.
		var sampledLocal []int
		for _, comm := range comms {
			cg, cmap := cur.Subgraph(comm)
			scores := rankBy(opt.Centrality, cg, opt.Parallelism)
			for _, r := range centrality.TopK(scores, opt.TopM) {
				sampledLocal = append(sampledLocal, cmap[r.Node])
			}
		}
		sort.Ints(sampledLocal)
		it.Sampled = translate(sampledLocal, curMap)

		// Step 7: instrument (simulated or value-based sampling).
		detectedGlobal := sampler.Sample(it.Sampled)
		it.Detected = detectedGlobal

		// Step 9 success: a bug node was instrumented.
		for _, s := range it.Sampled {
			if bugSet[s] {
				it.Action = ActionBugInstrumented
				res.Iterations = append(res.Iterations, it)
				res.Final = append([]int(nil), curMap...)
				res.BugInstrumented = true
				res.Converged = true
				return res, nil
			}
		}

		// Step 8: contract.
		var keepLocal []int
		if len(detectedGlobal) == 0 {
			// 8a: drop everything on paths terminating at the sampled
			// (clean) nodes.
			it.Action = ActionRemoveCleared
			drop := map[int]bool{}
			for _, n := range cur.Ancestors(sampledLocal) {
				drop[n] = true
			}
			for n := 0; n < cur.NumNodes(); n++ {
				if !drop[n] {
					keepLocal = append(keepLocal, n)
				}
			}
		} else {
			// 8b: keep only paths terminating on detected nodes.
			it.Action = ActionContractToDetected
			keepLocal = cur.Ancestors(localIDs(detectedGlobal, curMap))
		}
		res.Iterations = append(res.Iterations, it)

		if len(keepLocal) == 0 || len(keepLocal) == cur.NumNodes() {
			// The paper's first issue: the induced subgraph does not
			// refine the previous iteration (or refines to nothing).
			last := &res.Iterations[len(res.Iterations)-1]
			last.Action = ActionFixedPoint
			res.Final = translateLocalKeep(keepLocal, curMap, cur.NumNodes())
			res.Converged = true
			return res, nil
		}
		next, nextLocal := cur.Subgraph(keepLocal)
		nextMap := make([]int, len(nextLocal))
		for i, l := range nextLocal {
			nextMap[i] = curMap[l]
		}
		cur, curMap = next, nextMap
	}
	res.Final = append([]int(nil), curMap...)
	return res, nil
}

// rankBy dispatches the centrality measure named by kind. par bounds
// the eigensolver's matvec worker pool.
func rankBy(kind string, g *graph.Digraph, par int) []float64 {
	opt := centrality.Options{Parallelism: par}
	switch kind {
	case "", "eigen-in":
		return centrality.EigenvectorIn(g, opt)
	case "degree":
		return centrality.InDegree(g)
	case "pagerank":
		return centrality.PageRank(g, 0.85, opt)
	case "nonbacktracking":
		return centrality.NonBacktracking(g.Undirected(), opt)
	}
	return centrality.EigenvectorIn(g, opt)
}

func translate(local []int, m []int) []int {
	out := make([]int, len(local))
	for i, l := range local {
		out[i] = m[l]
	}
	sort.Ints(out)
	return out
}

func localIDs(global []int, m []int) []int {
	pos := make(map[int]int, len(m))
	for i, g := range m {
		pos[g] = i
	}
	var out []int
	for _, g := range global {
		if i, ok := pos[g]; ok {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

func translateLocalKeep(keepLocal, curMap []int, n int) []int {
	if len(keepLocal) == 0 {
		// Refined to nothing: report the previous subgraph.
		return append([]int(nil), curMap...)
	}
	return translate(keepLocal, curMap)
}

// ReachabilitySampler simulates step 7 the way the paper does (§5.2):
// an instrumented node registers a difference iff it is reachable from
// a known bug node (or is one) in the full metagraph digraph g.
// bugNodes and the returned ids are metagraph ids.
func ReachabilitySampler(g *graph.Digraph, bugNodes []int) Sampler {
	// Precompute the bug-influenced set once.
	influenced := map[int]bool{}
	for _, d := range g.Descendants(bugNodes) {
		influenced[d] = true
	}
	return SamplerFunc(func(nodes []int) []int {
		var out []int
		for _, n := range nodes {
			if influenced[n] {
				out = append(out, n)
			}
		}
		return out
	})
}
