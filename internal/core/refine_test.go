package core

import (
	"errors"
	"testing"

	"github.com/climate-rca/rca/internal/graph"
)

var errTest = errors.New("test checkpoint failure")

// twoCommunityGraph builds a directed graph with two dense clusters
// (0..k-1 and k..2k-1) joined by one edge, where node `bug` feeds its
// whole cluster. Returns graph and identity node map.
func twoCommunityGraph(k int) (*graph.Digraph, []int) {
	g := graph.New(2 * k)
	g.AddNodes(2 * k)
	dense := func(off int) {
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if i != j && (i+j)%2 == 0 {
					g.AddEdge(off+i, off+j)
				}
			}
		}
		// Chain so the cluster is connected regardless of parity.
		for i := 0; i < k-1; i++ {
			g.AddEdge(off+i, off+i+1)
		}
	}
	dense(0)
	dense(k)
	g.AddEdge(k-1, k)
	ids := make([]int, 2*k)
	for i := range ids {
		ids[i] = i
	}
	return g, ids
}

func TestRefineFindsBugViaSampling(t *testing.T) {
	g, ids := twoCommunityGraph(20)
	bug := []int{3} // in the first cluster, feeding everything there
	res, _ := Refine(g, ids, ReachabilitySampler(g, bug), bug, Options{SmallEnough: 5})
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if len(res.Iterations) == 0 {
		t.Fatal("no iterations recorded")
	}
	// Either the bug was directly instrumented or the final subgraph
	// contains it.
	if !res.BugInstrumented {
		found := false
		for _, n := range res.Final {
			if n == 3 {
				found = true
			}
		}
		if !found {
			t.Fatalf("bug node lost: final = %v", res.Final)
		}
	}
}

func TestRefineSmallEnoughStopsImmediately(t *testing.T) {
	g, ids := twoCommunityGraph(5) // 10 nodes < default SmallEnough
	res, _ := Refine(g, ids, SamplerFunc(func([]int) []int { return nil }), nil, Options{})
	if len(res.Iterations) != 1 || res.Iterations[0].Action != ActionSmallEnough {
		t.Fatalf("iterations = %+v", res.Iterations)
	}
	if !res.Converged || len(res.Final) != 10 {
		t.Fatalf("result = %+v", res)
	}
}

func TestRefine8aRemovesCleanRegion(t *testing.T) {
	// Bug in cluster B; samples in cluster A detect nothing, so 8a
	// should drop A's ancestor region and keep B.
	g, ids := twoCommunityGraph(20)
	bug := []int{25} // second cluster
	res, _ := Refine(g, ids, ReachabilitySampler(g, bug), bug, Options{SmallEnough: 4, MaxIterations: 6})
	// The bug node must survive every contraction.
	for _, it := range res.Iterations {
		_ = it
	}
	found := res.BugInstrumented
	for _, n := range res.Final {
		if n == 25 {
			found = true
		}
	}
	if !found {
		t.Fatalf("bug node eliminated: %+v", res)
	}
}

func TestRefineNoCommunitiesOnSparseGraph(t *testing.T) {
	// A graph of isolated pairs has no communities >= MinCommunity.
	g := graph.New(40)
	g.AddNodes(40)
	for i := 0; i+1 < 40; i += 2 {
		g.AddEdge(i, i+1)
	}
	ids := make([]int, 40)
	for i := range ids {
		ids[i] = i
	}
	res, _ := Refine(g, ids, SamplerFunc(func([]int) []int { return nil }), nil,
		Options{SmallEnough: 5, MinCommunity: 3})
	last := res.Iterations[len(res.Iterations)-1]
	if last.Action != ActionNoCommunities {
		t.Fatalf("action = %v", last.Action)
	}
	if !res.Converged {
		t.Fatal("not converged")
	}
}

func TestRefineRecordsCommunitiesAndSamples(t *testing.T) {
	g, ids := twoCommunityGraph(15)
	bug := []int{2}
	res, _ := Refine(g, ids, ReachabilitySampler(g, bug), bug,
		Options{SmallEnough: 4, TopM: 3, MaxIterations: 1})
	it := res.Iterations[0]
	if len(it.Communities) < 2 {
		t.Fatalf("communities = %d", len(it.Communities))
	}
	if len(it.Sampled) == 0 || len(it.Sampled) > 3*len(it.Communities) {
		t.Fatalf("sampled = %v", it.Sampled)
	}
	if it.Nodes != 30 {
		t.Fatalf("nodes = %d", it.Nodes)
	}
}

func TestReachabilitySampler(t *testing.T) {
	g := graph.New(4)
	g.AddNodes(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	s := ReachabilitySampler(g, []int{0})
	got := s.Sample([]int{1, 2, 3})
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("detected = %v", got)
	}
	// The bug node itself is "influenced".
	if got := s.Sample([]int{0}); len(got) != 1 {
		t.Fatalf("bug node not detected: %v", got)
	}
}

func TestValueSampler(t *testing.T) {
	keys := map[int]string{1: "m::s::a", 2: "m::s::b", 3: "m::s::c", 4: "missing"}
	keyOf := func(n int) string { return keys[n] }
	ens := map[string][]float64{
		"m::s::a": {1, 2},
		"m::s::b": {1, 2},
		"m::s::c": {1, 2},
	}
	exp := map[string][]float64{
		"m::s::a": {1, 2},        // identical -> clean
		"m::s::b": {1 + 1e-6, 2}, // differs -> detected
		"m::s::c": {1, 2, 3},     // shape mismatch -> skipped
	}
	s := ValueSampler(keyOf, ens, exp, 1e-12)
	got := s.Sample([]int{1, 2, 3, 4})
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("detected = %v", got)
	}
}

func TestRefineFixedPointDetected(t *testing.T) {
	// Complete-ish digraph where every node reaches every sampled node:
	// 8b keeps everything -> fixed point.
	n := 30
	g := graph.New(n)
	g.AddNodes(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				g.AddEdge(i, j)
			}
		}
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	// Everything detects (bug node 0 reaches all).
	res, _ := Refine(g, ids, ReachabilitySampler(g, []int{0}), nil,
		Options{SmallEnough: 2, MaxIterations: 5})
	last := res.Iterations[len(res.Iterations)-1]
	if last.Action != ActionFixedPoint {
		t.Fatalf("action = %v; want fixed point", last.Action)
	}
	if len(res.Final) != n {
		t.Fatalf("final = %d nodes", len(res.Final))
	}
}

// TestRefineCheckpointAborts: a failing checkpoint stops the loop
// before any iteration runs and surfaces the error.
func TestRefineCheckpointAborts(t *testing.T) {
	g, ids := twoCommunityGraph(20)
	calls := 0
	wantErr := errTest
	res, err := Refine(g, ids, SamplerFunc(func([]int) []int { return nil }), nil,
		Options{Checkpoint: func() error { calls++; return wantErr }})
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if res != nil {
		t.Fatalf("res = %+v, want nil", res)
	}
	if calls != 1 {
		t.Fatalf("checkpoint calls = %d", calls)
	}
}

// TestRefineCheckpointBetweenIterations: a checkpoint that trips after
// the first iteration aborts a multi-iteration refinement midway.
func TestRefineCheckpointBetweenIterations(t *testing.T) {
	// A chain digraph; the sampler always detects the smallest sampled
	// node, so 8b contracts to a strictly shorter prefix each round.
	n := 40
	g := graph.New(n)
	g.AddNodes(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(i, i+1)
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	calls := 0
	_, err := Refine(g, ids, SamplerFunc(func(nodes []int) []int {
		return nodes[:1]
	}), nil, Options{SmallEnough: 2, WholeGraphSampling: true,
		Checkpoint: func() error {
			calls++
			if calls > 1 {
				return errTest
			}
			return nil
		}})
	if err != errTest {
		t.Fatalf("err = %v, want errTest", err)
	}
	if calls != 2 {
		t.Fatalf("checkpoint calls = %d, want 2", calls)
	}
}
