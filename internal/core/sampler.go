package core

import (
	"sort"

	"github.com/climate-rca/rca/internal/stats"
)

// Sampler is the step-7 instrumentation abstraction of Algorithm 5.4:
// given the instrumented node set it reports which nodes take
// different values between the ensemble and the experimental run. Node
// ids are in the caller's (metagraph) id space. Implementations:
// ReachabilitySampler (the paper's simulation) and ValueSampler
// (interpreter snapshots).
type Sampler interface {
	Sample(nodes []int) []int
}

// SamplerFunc adapts a plain function to the Sampler interface.
type SamplerFunc func(nodes []int) []int

// Sample calls f.
func (f SamplerFunc) Sample(nodes []int) []int { return f(nodes) }

// ValueSampler builds a Sampler from actual runtime snapshots: a node
// registers a difference when its captured values in the experimental
// run differ from the ensemble run beyond tol (normalized RMS). keyOf
// maps a metagraph node id to its snapshot key
// (module::subprogram::variable); ens and exp are Machine.AllValues
// captures. Nodes with no snapshot (never executed, intrinsics) never
// register differences — exactly the blind spot real instrumentation
// would have.
//
// This realizes the runtime-sampling step the paper performs in
// simulation ("developing and implementing a sampling procedure for
// the running model ... remains to be done", §7).
func ValueSampler(keyOf func(node int) string, ens, exp map[string][]float64, tol float64) Sampler {
	m := MagnitudeSampler(keyOf, ens, exp)
	if tol <= 0 {
		tol = 1e-12
	}
	return SamplerFunc(func(nodes []int) []int {
		var out []int
		for _, d := range m.Differences(nodes) {
			if d.Magnitude > tol {
				out = append(out, d.Node)
			}
		}
		return out
	})
}

// Difference is a sampled node's normalized-RMS deviation between the
// ensemble and experimental runs.
type Difference struct {
	Node      int
	Magnitude float64
}

// GradedSampler reports per-node difference magnitudes rather than a
// binary verdict — the measurement the paper proposes for breaking
// non-refining fixed points ("rank the differences obtained by
// sampling and further refine the subgraph based on the nodes with
// the greatest differences", §6.3 future work).
type GradedSampler interface {
	Differences(nodes []int) []Difference
}

// GradedSamplerFunc adapts a plain function to GradedSampler.
type GradedSamplerFunc func(nodes []int) []Difference

// Differences calls f.
func (f GradedSamplerFunc) Differences(nodes []int) []Difference { return f(nodes) }

// MagnitudeSampler builds a GradedSampler from runtime snapshots.
// Nodes without comparable snapshots are omitted.
func MagnitudeSampler(keyOf func(node int) string, ens, exp map[string][]float64) GradedSampler {
	return GradedSamplerFunc(func(nodes []int) []Difference {
		var out []Difference
		for _, n := range nodes {
			k := keyOf(n)
			a, okA := ens[k]
			b, okB := exp[k]
			if !okA || !okB || len(a) != len(b) || len(a) == 0 {
				continue
			}
			out = append(out, Difference{Node: n, Magnitude: stats.NormalizedRMSDiff(a, b)})
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Magnitude != out[j].Magnitude {
				return out[i].Magnitude > out[j].Magnitude
			}
			return out[i].Node < out[j].Node
		})
		return out
	})
}
