package model

import (
	"math"
	"testing"

	"github.com/climate-rca/rca/internal/corpus"
	"github.com/climate-rca/rca/internal/ect"
	"github.com/climate-rca/rca/internal/stats"
)

func runnerFor(t *testing.T, cfg corpus.Config) *Runner {
	t.Helper()
	r, err := NewRunner(corpus.Generate(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestModelRunsAndIsFinite(t *testing.T) {
	r := runnerFor(t, corpus.Config{AuxModules: 30, Seed: 2})
	res, err := r.Run(RunConfig{Member: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Means) < 25 {
		t.Fatalf("only %d outputs captured", len(res.Means))
	}
	for k, v := range res.Means {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("output %s = %v", k, v)
		}
	}
	// Physical sanity: T should stay near its initial range.
	if tm := res.Means["T"]; tm < 200 || tm > 350 {
		t.Fatalf("T mean = %v", tm)
	}
}

func TestDeterministicGivenMember(t *testing.T) {
	r := runnerFor(t, corpus.Config{AuxModules: 20, Seed: 2})
	a, err := r.Run(RunConfig{Member: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(RunConfig{Member: 3})
	if err != nil {
		t.Fatal(err)
	}
	for k := range a.Means {
		if a.Means[k] != b.Means[k] {
			t.Fatalf("nondeterministic output %s", k)
		}
	}
}

func TestEnsembleSpreadExistsAndIsSmall(t *testing.T) {
	r := runnerFor(t, corpus.Config{AuxModules: 20, Seed: 2})
	ens, err := r.Ensemble(8, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	spreadT := sampleOf(ens, "T")
	sd := stats.Std(spreadT)
	if sd == 0 {
		t.Fatal("no ensemble spread in T")
	}
	if sd/math.Abs(stats.Mean(spreadT)) > 1e-3 {
		t.Fatalf("T spread suspiciously large: sd=%v", sd)
	}
	// wsub must also vary (via the wpert perturbation).
	if stats.Std(sampleOf(ens, "WSUB")) == 0 {
		t.Fatal("no spread in WSUB")
	}
}

func sampleOf(runs []ect.RunOutput, key string) []float64 {
	out := make([]float64, len(runs))
	for i, r := range runs {
		out[i] = r[key]
	}
	return out
}

// TestECTShape is the calibration gate for the whole reproduction: the
// control passes the consistency test, and every experiment fails it
// (paper §6: all experiments produce UF-CAM-ECT failures).
func TestECTShape(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test is slow")
	}
	base := corpus.Config{AuxModules: 30, Seed: 2}
	r := runnerFor(t, base)
	ens, err := r.Ensemble(40, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	test, err := ect.NewTest(ens, ect.Config{})
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, runs []ect.RunOutput, wantFail bool) {
		t.Helper()
		rate := test.FailureRate(runs)
		if wantFail && rate < 0.8 {
			t.Errorf("%s: failure rate %.2f; want >= 0.8", name, rate)
		}
		if !wantFail && rate > 0.2 {
			t.Errorf("%s: failure rate %.2f; want <= 0.2", name, rate)
		}
	}

	// Control: fresh members with unseen perturbation seeds must pass.
	control, err := r.ExperimentalSet(10, 1000, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	check("control", control, false)

	// RAND-MT: same source, Mersenne Twister PRNG.
	mt, err := r.ExperimentalSet(10, 1000, RunConfig{RNG: RNGMersenne})
	if err != nil {
		t.Fatal(err)
	}
	check("RAND-MT", mt, true)

	// AVX2: FMA enabled everywhere.
	fma, err := r.ExperimentalSet(10, 1000, RunConfig{FMA: func(string) bool { return true }})
	if err != nil {
		t.Fatal(err)
	}
	check("AVX2", fma, true)

	// Source bugs.
	for _, bug := range []corpus.Bug{corpus.BugWsub, corpus.BugGoffGratch,
		corpus.BugDyn3, corpus.BugRandomIdx} {
		cfg := base
		cfg.Bug = bug
		br := runnerFor(t, cfg)
		runs, err := br.ExperimentalSet(10, 1000, RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		check(bug.String(), runs, true)
	}
}

func TestTraceCoversSubprograms(t *testing.T) {
	r := runnerFor(t, corpus.Config{AuxModules: 15, Seed: 2})
	seen := map[string]bool{}
	_, err := r.Run(RunConfig{
		StopAfter: 2,
		Trace:     func(mod, sub string) { seen[mod+"::"+sub] = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"cam_driver::cam_init", "cam_driver::cam_step",
		"micro_mg::micro_mg_tend", "dyn3::dyn3_hydro",
	} {
		if !seen[want] {
			t.Fatalf("trace missing %s (have %d entries)", want, len(seen))
		}
	}
	// Unused subprograms must not appear.
	for k := range seen {
		if k == "microp_aero::aero_unused" {
			t.Fatalf("unused subprogram traced: %s", k)
		}
	}
}

func TestKernelWatchCapturesMicroMG(t *testing.T) {
	r := runnerFor(t, corpus.Config{AuxModules: 10, Seed: 2})
	res, err := r.Run(RunConfig{KernelWatch: "micro_mg::micro_mg_tend"})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"dum", "ratio", "tlat", "nctend", "qvlat", "nitend"} {
		if len(res.Engine.Captured().Kernel[v]) == 0 {
			t.Fatalf("kernel variable %s not captured", v)
		}
	}
}

func TestFMAChangesMicroMGKernel(t *testing.T) {
	r := runnerFor(t, corpus.Config{AuxModules: 10, Seed: 2})
	off, err := r.Run(RunConfig{KernelWatch: "micro_mg::micro_mg_tend"})
	if err != nil {
		t.Fatal(err)
	}
	on, err := r.Run(RunConfig{
		KernelWatch: "micro_mg::micro_mg_tend",
		FMA:         func(string) bool { return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	diff := stats.NormalizedRMSDiff(off.Engine.Captured().Kernel["tlat"], on.Engine.Captured().Kernel["tlat"])
	if !(diff > 1e-12) {
		t.Fatalf("tlat normalized RMS diff = %v; want > 1e-12", diff)
	}
}

func TestRunBatchMeansMatchesSolo(t *testing.T) {
	r := runnerFor(t, corpus.Config{AuxModules: 25, Seed: 4})
	members := []int{0, 1, 2, 3, 4, 5, 1000, 1001}
	batched, err := r.RunBatchMeans(RunConfig{}, members)
	if err != nil {
		t.Fatal(err)
	}
	if len(batched) != len(members) {
		t.Fatalf("got %d outputs, want %d", len(batched), len(members))
	}
	for i, m := range members {
		solo, err := r.Run(RunConfig{Member: m})
		if err != nil {
			t.Fatal(err)
		}
		if len(batched[i]) != len(solo.Means) {
			t.Fatalf("member %d: %d outputs vs solo %d", m, len(batched[i]), len(solo.Means))
		}
		for k, v := range solo.Means {
			bv, ok := batched[i][k]
			if !ok {
				t.Fatalf("member %d: output %s missing from batch", m, k)
			}
			if math.Float64bits(bv) != math.Float64bits(v) {
				t.Fatalf("member %d output %s: batch %v solo %v", m, k, bv, v)
			}
		}
	}
}

func TestRunBatchMeansVariants(t *testing.T) {
	r := runnerFor(t, corpus.Config{AuxModules: 25, Seed: 4})
	cfgs := map[string]RunConfig{
		"mersenne":  {RNG: RNGMersenne},
		"stopafter": {StopAfter: 2},
		"fma":       {FMA: func(string) bool { return true }},
	}
	for name, cfg := range cfgs {
		members := []int{2, 7, 11}
		batched, err := r.RunBatchMeans(cfg, members)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, m := range members {
			c := cfg
			c.Member = m
			solo, err := r.Run(c)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for k, v := range solo.Means {
				if math.Float64bits(batched[i][k]) != math.Float64bits(v) {
					t.Fatalf("%s member %d output %s: batch %v solo %v", name, m, k, batched[i][k], v)
				}
			}
		}
	}
}

func TestRunBatchMeansTreeFallback(t *testing.T) {
	r := runnerFor(t, corpus.Config{AuxModules: 20, Seed: 2})
	batched, err := r.RunBatchMeans(RunConfig{Engine: EngineTree}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range []int{0, 1} {
		solo, err := r.Run(RunConfig{Member: m, Engine: EngineTree})
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range solo.Means {
			if math.Float64bits(batched[i][k]) != math.Float64bits(v) {
				t.Fatalf("member %d output %s differs under tree fallback", m, k)
			}
		}
	}
}
