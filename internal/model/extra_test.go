package model

import (
	"math"
	"testing"

	"github.com/climate-rca/rca/internal/corpus"
	"github.com/climate-rca/rca/internal/stats"
)

func TestRNGSeedSharedAcrossMembers(t *testing.T) {
	// Two different members use the same PRNG stream (CESM's streams
	// are reproducible): their cloud random draws are identical, so
	// the *only* inter-member variation is the initial perturbation.
	r := runnerFor(t, corpus.Config{AuxModules: 15, Seed: 2})
	a, err := r.Run(RunConfig{Member: 1, SnapshotAll: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(RunConfig{Member: 2, SnapshotAll: true})
	if err != nil {
		t.Fatal(err)
	}
	ra := a.Engine.Captured().AllValues["cloud_rand_lw::::rnum_lw"]
	rb := b.Engine.Captured().AllValues["cloud_rand_lw::::rnum_lw"]
	if len(ra) == 0 || len(rb) == 0 {
		t.Fatal("rnum_lw snapshots missing")
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatal("PRNG stream differs between members")
		}
	}
}

func TestMersenneChangesDraws(t *testing.T) {
	r := runnerFor(t, corpus.Config{AuxModules: 15, Seed: 2})
	a, err := r.Run(RunConfig{Member: 1, SnapshotAll: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(RunConfig{Member: 1, RNG: RNGMersenne, SnapshotAll: true})
	if err != nil {
		t.Fatal(err)
	}
	ra := a.Engine.Captured().AllValues["cloud_rand_lw::::rnum_lw"]
	rb := b.Engine.Captured().AllValues["cloud_rand_lw::::rnum_lw"]
	same := true
	for i := range ra {
		if ra[i] != rb[i] {
			same = false
		}
	}
	if same {
		t.Fatal("Mersenne produced identical draws")
	}
}

func TestPertScaleControlsSpread(t *testing.T) {
	r := runnerFor(t, corpus.Config{AuxModules: 15, Seed: 2})
	spread := func(scale float64) float64 {
		ens, err := r.Ensemble(6, RunConfig{PertScale: scale})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Std(sampleOf(ens, "T"))
	}
	small := spread(1e-12)
	big := spread(1e-6)
	if !(big > 10*small) {
		t.Fatalf("spread insensitive to perturbation scale: %v vs %v", small, big)
	}
}

func TestStopAfterLimitsSteps(t *testing.T) {
	r := runnerFor(t, corpus.Config{AuxModules: 15, Seed: 2})
	one, err := r.Run(RunConfig{StopAfter: 1, SnapshotAll: true})
	if err != nil {
		t.Fatal(err)
	}
	full, err := r.Run(RunConfig{SnapshotAll: true})
	if err != nil {
		t.Fatal(err)
	}
	n1 := one.Engine.Captured().AllValues["cam_driver::::nstep"]
	n9 := full.Engine.Captured().AllValues["cam_driver::::nstep"]
	if n1[0] != 1 || n9[0] != float64(Steps) {
		t.Fatalf("nstep: one=%v full=%v", n1, n9)
	}
}

func TestEnsembleMembersDiffer(t *testing.T) {
	r := runnerFor(t, corpus.Config{AuxModules: 15, Seed: 2})
	ens, err := r.Ensemble(4, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ens); i++ {
		if ens[i]["T"] == ens[0]["T"] {
			t.Fatalf("members %d and 0 identical", i)
		}
	}
}

func TestAuxCouplerFeedsTemperature(t *testing.T) {
	// The coupler closes the loop from auxiliary modules to state%t:
	// the graph must show auxten as an ancestor of t (slice growth).
	r := runnerFor(t, corpus.Config{AuxModules: 30, Seed: 2})
	res, err := r.Run(RunConfig{SnapshotAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Engine.Captured().AllValues["aux_coupler::::auxten"]; !ok {
		t.Fatal("auxten never materialized")
	}
	// auxten contributions must not destabilize T.
	tm := res.Means["T"]
	if math.IsNaN(tm) || tm < 200 || tm > 350 {
		t.Fatalf("T = %v", tm)
	}
}
