package model

import (
	"testing"

	"github.com/climate-rca/rca/internal/corpus"
)

// The batched/solo pair below isolates the ensemble-execution stage:
// the same eight members through one lockstep BatchVM versus eight
// solo VM runs. The pipeline benchmarks at the repo root measure the
// end-to-end effect.

func batchBenchRunner(b *testing.B) *Runner {
	b.Helper()
	r, err := NewRunner(corpus.Generate(corpus.Config{AuxModules: 40, Seed: 2}))
	if err != nil {
		b.Fatal(err)
	}
	return r
}

func BenchmarkEnsembleBatch8(b *testing.B) {
	r := batchBenchRunner(b)
	members := []int{0, 1, 2, 3, 4, 5, 6, 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.RunBatchMeans(RunConfig{}, members); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnsembleSolo8(b *testing.B) {
	r := batchBenchRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for m := 0; m < 8; m++ {
			if _, err := r.Run(RunConfig{Member: m}); err != nil {
				b.Fatal(err)
			}
		}
	}
}
