// Package model ties the synthetic corpus to the execution engine: it
// builds an engine instance from a Corpus, applies CESM-style
// initial-condition perturbations, advances the model, and harvests
// the step-9 output global means the consistency test consumes
// (UF-CAM-ECT evaluates at time step nine, paper §2.1).
//
// Two engines implement the integration substrate: the bytecode
// register VM (internal/bytecode, the default — compiled once per
// Runner and cached) and the tree-walking interpreter
// (internal/interp, the reference oracle). Their outputs are pinned
// bit-identical, so the choice is purely a throughput knob.
package model

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/climate-rca/rca/internal/bytecode"
	"github.com/climate-rca/rca/internal/corpus"
	"github.com/climate-rca/rca/internal/ect"
	"github.com/climate-rca/rca/internal/fortran"
	"github.com/climate-rca/rca/internal/interp"
	"github.com/climate-rca/rca/internal/rng"
)

// Steps is the UF-ECT evaluation horizon.
const Steps = 9

// RNGKind selects the model's random_number generator.
type RNGKind int

// Generator choices.
const (
	RNGDefault RNGKind = iota // KISS, the CESM-like default
	RNGMersenne
)

// EngineKind selects the execution engine for an integration.
type EngineKind int

// Engine choices. The zero value defers to the Runner's default,
// which is the bytecode VM unless the Runner was built with
// NewRunnerEngine(..., EngineTree).
const (
	EngineDefault EngineKind = iota
	EngineBytecode
	EngineTree
)

// String names the engine for metrics and CLI output.
func (k EngineKind) String() string {
	switch k {
	case EngineTree:
		return "tree"
	default:
		return "bytecode"
	}
}

// ParseEngine maps CLI flag values onto engine kinds.
func ParseEngine(s string) (EngineKind, error) {
	switch s {
	case "", "bytecode":
		return EngineBytecode, nil
	case "tree":
		return EngineTree, nil
	}
	return EngineDefault, fmt.Errorf("model: unknown engine %q (want bytecode or tree)", s)
}

// RunConfig configures one model integration.
type RunConfig struct {
	Ncol int // columns; 0 = 16
	// Member seeds the initial-condition perturbation (ensemble member
	// id or experimental run id).
	Member int
	// PertScale is the absolute temperature perturbation magnitude.
	// 0 selects the default 1e-9 (CESM uses O(1e-14) relative, which
	// at T≈280 is the same order of magnitude).
	PertScale float64
	// RNG picks the random_number generator (RAND-MT swaps this).
	RNG RNGKind
	// RNGSeed seeds the model PRNG; it is deliberately identical for
	// every member (CESM's PRNG streams are reproducible), so PRNG
	// values are not a source of ensemble spread.
	RNGSeed uint64
	// FMA enables fused multiply-add per module (nil = all disabled).
	FMA func(module string) bool
	// Trace receives subprogram entries (coverage runs).
	Trace func(module, subprogram string)
	// KernelWatch is the module::subprogram to snapshot (KGen runs).
	KernelWatch string
	// SnapshotAll captures every variable's final values keyed by
	// metagraph node key — the runtime-sampling instrumentation.
	SnapshotAll bool
	// StopAfter limits the number of steps (0 = full 9 steps); the
	// coverage filter runs only 2 steps, per §2.1.
	StopAfter int
	// Engine overrides the Runner's execution engine for this run.
	Engine EngineKind
}

// Result is one completed integration.
type Result struct {
	// Means maps output label to global mean at the final step.
	Means ect.RunOutput
	// Engine is the finished execution engine (exposes the captured
	// Outputs/Kernel/AllValues through Captured()).
	Engine interp.Engine
}

// Runner caches the parsed corpus — and, for the bytecode engine, the
// compiled program — for repeated integrations. It is safe for
// concurrent use: ensemble members fan out over one Runner.
type Runner struct {
	Corpus  *corpus.Corpus
	Modules []*fortran.Module

	engine EngineKind

	progMu sync.Mutex
	prog   *bytecode.Program
	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewRunner parses the corpus once; integrations default to the
// bytecode engine.
func NewRunner(c *corpus.Corpus) (*Runner, error) {
	return NewRunnerEngine(c, EngineDefault)
}

// NewRunnerEngine parses the corpus once and fixes the default
// execution engine for its integrations.
func NewRunnerEngine(c *corpus.Corpus, engine EngineKind) (*Runner, error) {
	mods, err := c.Parse()
	if err != nil {
		return nil, err
	}
	return &Runner{Corpus: c, Modules: mods, engine: engine}, nil
}

// Engine reports the Runner's default engine.
func (r *Runner) Engine() EngineKind {
	if r.engine == EngineTree {
		return EngineTree
	}
	return EngineBytecode
}

// progCache shares compiled programs process-wide, keyed by module
// identity: the parse cache hands identical source trees the same
// *fortran.Module pointers, so a restarted Session (or a parallel one
// over the same corpus configuration) reuses the compiled artifact
// instead of recompiling. Programs are immutable, so sharing is safe.
// Each entry retains the module pointers its key was built from —
// that keeps every keyed address alive, so a recycled allocation can
// never alias a stored key.
type progEntry struct {
	mods []*fortran.Module
	prog *bytecode.Program
}

var (
	progCache     sync.Map // module-pointer key → *progEntry
	progCacheSize atomic.Int64
)

const progCacheMax = 128

func progKey(mods []*fortran.Module) string {
	var b strings.Builder
	for _, m := range mods {
		fmt.Fprintf(&b, "%p;", m)
	}
	return b.String()
}

// Program returns the compiled bytecode program, compiling on first
// use. It is the Session's cached build artifact: every scenario
// sharing this Runner's source fingerprint reuses it (and, through the
// process-wide layer, so does every other Runner over an identical
// source tree).
func (r *Runner) Program() *bytecode.Program {
	r.progMu.Lock()
	defer r.progMu.Unlock()
	if r.prog != nil {
		r.hits.Add(1)
		return r.prog
	}
	key := progKey(r.Modules)
	if v, ok := progCache.Load(key); ok {
		r.hits.Add(1)
		r.prog = v.(*progEntry).prog
		return r.prog
	}
	r.misses.Add(1)
	r.prog = bytecode.Compile(r.Modules)
	if progCacheSize.Load() < progCacheMax {
		e := &progEntry{mods: append([]*fortran.Module(nil), r.Modules...), prog: r.prog}
		if v, loaded := progCache.LoadOrStore(key, e); loaded {
			r.prog = v.(*progEntry).prog
		} else {
			progCacheSize.Add(1)
		}
	}
	return r.prog
}

// SetProgram installs a precompiled program (typically decoded from
// the artifact store) as this Runner's bytecode build artifact, so
// integrations skip compilation entirely. A program the Runner already
// compiled wins — the installed one must describe the same sources,
// and the compiled one is already shared process-wide. The program is
// registered in the process-global cache so sibling Runners over an
// identical parse reuse it too.
func (r *Runner) SetProgram(p *bytecode.Program) {
	if p == nil {
		return
	}
	r.progMu.Lock()
	defer r.progMu.Unlock()
	if r.prog != nil {
		return
	}
	r.prog = p
	if progCacheSize.Load() < progCacheMax {
		key := progKey(r.Modules)
		e := &progEntry{mods: append([]*fortran.Module(nil), r.Modules...), prog: p}
		if v, loaded := progCache.LoadOrStore(key, e); loaded {
			r.prog = v.(*progEntry).prog
		} else {
			progCacheSize.Add(1)
		}
	}
}

// CompileStats reports program-cache hits and misses (rcad's /metrics
// surfaces the session-wide aggregate).
func (r *Runner) CompileStats() (hits, misses uint64) {
	return r.hits.Load(), r.misses.Load()
}

// engineFor builds the engine instance for one integration.
func (r *Runner) engineFor(cfg RunConfig, src rng.Source) (interp.Engine, error) {
	icfg := interp.Config{
		Ncol:        cfg.Ncol,
		RNG:         src,
		FMA:         cfg.FMA,
		Trace:       cfg.Trace,
		KernelWatch: cfg.KernelWatch,
		SnapshotAll: cfg.SnapshotAll,
	}
	kind := cfg.Engine
	if kind == EngineDefault {
		kind = r.Engine()
	}
	if kind == EngineTree {
		return interp.NewMachine(r.Modules, icfg)
	}
	return r.Program().NewVM(icfg)
}

// Run integrates the model per cfg and returns the step-9 output
// means.
func (r *Runner) Run(cfg RunConfig) (*Result, error) {
	if cfg.Ncol == 0 {
		cfg.Ncol = 16
	}
	if cfg.PertScale == 0 {
		cfg.PertScale = 1e-9
	}
	if cfg.RNGSeed == 0 {
		cfg.RNGSeed = 777
	}
	var src rng.Source
	switch cfg.RNG {
	case RNGMersenne:
		src = rng.NewMT19937(cfg.RNGSeed)
	default:
		src = rng.NewKISS(cfg.RNGSeed)
	}
	eng, err := r.engineFor(cfg, src)
	if err != nil {
		return nil, err
	}
	if err := eng.Call(r.Corpus.DriverModule, r.Corpus.InitSub); err != nil {
		return nil, fmt.Errorf("model: init: %w", err)
	}
	if err := perturb(eng, cfg); err != nil {
		return nil, err
	}
	steps := Steps
	if cfg.StopAfter > 0 && cfg.StopAfter < Steps {
		steps = cfg.StopAfter
	}
	for s := 0; s < steps; s++ {
		if err := eng.Call(r.Corpus.DriverModule, r.Corpus.StepSub); err != nil {
			return nil, fmt.Errorf("model: step %d: %w", s+1, err)
		}
	}
	if cfg.SnapshotAll {
		eng.SnapshotModuleVars()
	}
	return &Result{Means: eng.Captured().OutputMeans(), Engine: eng}, nil
}

// RunBatchMeans integrates a set of members in lockstep on one
// batched VM (internal/bytecode.BatchVM) and returns their step-9
// output means in member order — bit-identical to running each member
// through Run. Members share everything except the perturbation seed,
// so the lanes execute the same instruction stream and diverge only at
// data-dependent branches. Configurations the batched engine cannot
// express (the tree engine, Trace callbacks) and single-member sets
// fall back to solo runs. On failure the error of the lowest failing
// member is returned, wrapped exactly as Run wraps it.
func (r *Runner) RunBatchMeans(base RunConfig, members []int) ([]ect.RunOutput, error) {
	if len(members) == 0 {
		return nil, nil
	}
	kind := base.Engine
	if kind == EngineDefault {
		kind = r.Engine()
	}
	if kind == EngineTree || base.Trace != nil || len(members) == 1 {
		out := make([]ect.RunOutput, len(members))
		for i, m := range members {
			cfg := base
			cfg.Member = m
			res, err := r.Run(cfg)
			if err != nil {
				return nil, err
			}
			out[i] = res.Means
		}
		return out, nil
	}
	cfg := base
	if cfg.Ncol == 0 {
		cfg.Ncol = 16
	}
	if cfg.PertScale == 0 {
		cfg.PertScale = 1e-9
	}
	if cfg.RNGSeed == 0 {
		cfg.RNGSeed = 777
	}
	nl := len(members)
	rngs := make([]rng.Source, nl)
	for i := range rngs {
		switch cfg.RNG {
		case RNGMersenne:
			rngs[i] = rng.NewMT19937(cfg.RNGSeed)
		default:
			rngs[i] = rng.NewKISS(cfg.RNGSeed)
		}
	}
	vm, err := r.Program().NewBatchVM(interp.Config{
		Ncol:        cfg.Ncol,
		FMA:         cfg.FMA,
		KernelWatch: cfg.KernelWatch,
		SnapshotAll: cfg.SnapshotAll,
	}, rngs)
	if err != nil {
		return nil, err
	}
	// wrap holds each lane's first error with Run's phase wrapping; a
	// lane's sticky VM error freezes it, so later phases cannot
	// overwrite an earlier failure.
	wrap := make([]error, nl)
	mark := func(f func(error) error) {
		for l, e := range vm.LaneErrs() {
			if e != nil && wrap[l] == nil {
				wrap[l] = f(e)
			}
		}
	}
	vm.CallAll(r.Corpus.DriverModule, r.Corpus.InitSub)
	mark(func(e error) error { return fmt.Errorf("model: init: %w", e) })
	for l, m := range members {
		if wrap[l] != nil {
			continue
		}
		c := cfg
		c.Member = m
		if err := perturbLane(vm, l, c); err != nil {
			wrap[l] = err
		}
	}
	steps := Steps
	if cfg.StopAfter > 0 && cfg.StopAfter < Steps {
		steps = cfg.StopAfter
	}
	for s := 0; s < steps; s++ {
		vm.CallAll(r.Corpus.DriverModule, r.Corpus.StepSub)
		step := s + 1
		mark(func(e error) error { return fmt.Errorf("model: step %d: %w", step, e) })
	}
	if cfg.SnapshotAll {
		vm.SnapshotModuleVarsAll()
	}
	for _, e := range wrap {
		if e != nil {
			return nil, e
		}
	}
	out := make([]ect.RunOutput, nl)
	for l := range members {
		out[l] = vm.LaneResults(l).OutputMeans()
	}
	return out, nil
}

// perturb applies the member-specific initial-condition perturbation:
// a random temperature field perturbation (CESM pertlim-style) plus a
// small perturbation of the near-isolated wpert aerosol field so every
// output has nonzero ensemble variance.
func perturb(eng interp.Engine, cfg RunConfig) error {
	gen := rng.NewLCG(uint64(cfg.Member)*2654435761 + 97)
	t, ok := eng.ModuleArray("physics_types", "state", "t")
	if !ok {
		return fmt.Errorf("model: state variable missing")
	}
	for i := range t {
		t[i] += cfg.PertScale * gauss(gen)
	}
	if wp, ok := eng.ModuleArray("microp_aero", "wpert"); ok {
		for i := range wp {
			wp[i] += 1e-3 * gauss(gen)
		}
	}
	return nil
}

// perturbLane applies perturb's member-specific perturbation to one
// lane of a batched VM through strided LaneSlice views — the same LCG
// stream, draw order and target fields, so the lane's initial state is
// bit-identical to a solo run of that member.
func perturbLane(vm *bytecode.BatchVM, lane int, cfg RunConfig) error {
	gen := rng.NewLCG(uint64(cfg.Member)*2654435761 + 97)
	t, ok := vm.LaneArray(lane, "physics_types", "state", "t")
	if !ok {
		return fmt.Errorf("model: state variable missing")
	}
	for i, n := 0, t.Len(); i < n; i++ {
		t.Add(i, cfg.PertScale*gauss(gen))
	}
	if wp, ok := vm.LaneArray(lane, "microp_aero", "wpert"); ok {
		for i, n := 0, wp.Len(); i < n; i++ {
			wp.Add(i, 1e-3*gauss(gen))
		}
	}
	return nil
}

// gauss draws a standard normal via Box-Muller.
func gauss(g *rng.LCG) float64 {
	u1 := g.Float64()
	for u1 == 0 {
		u1 = g.Float64()
	}
	u2 := g.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Ensemble integrates members 0..n-1 with the base configuration.
func (r *Runner) Ensemble(n int, base RunConfig) ([]ect.RunOutput, error) {
	out := make([]ect.RunOutput, 0, n)
	for i := 0; i < n; i++ {
		cfg := base
		cfg.Member = i
		res, err := r.Run(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, res.Means)
	}
	return out, nil
}

// ExperimentalSet integrates members offset..offset+n-1 (disjoint from
// the ensemble's perturbation seeds).
func (r *Runner) ExperimentalSet(n, offset int, base RunConfig) ([]ect.RunOutput, error) {
	out := make([]ect.RunOutput, 0, n)
	for i := 0; i < n; i++ {
		cfg := base
		cfg.Member = offset + i
		res, err := r.Run(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, res.Means)
	}
	return out, nil
}
