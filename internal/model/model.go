// Package model ties the synthetic corpus to the interpreter: it
// builds a Machine from a Corpus, applies CESM-style initial-condition
// perturbations, advances the model, and harvests the step-9 output
// global means the consistency test consumes (UF-CAM-ECT evaluates at
// time step nine, paper §2.1).
package model

import (
	"fmt"
	"math"

	"github.com/climate-rca/rca/internal/corpus"
	"github.com/climate-rca/rca/internal/ect"
	"github.com/climate-rca/rca/internal/fortran"
	"github.com/climate-rca/rca/internal/interp"
	"github.com/climate-rca/rca/internal/rng"
)

// Steps is the UF-ECT evaluation horizon.
const Steps = 9

// RNGKind selects the model's random_number generator.
type RNGKind int

// Generator choices.
const (
	RNGDefault RNGKind = iota // KISS, the CESM-like default
	RNGMersenne
)

// RunConfig configures one model integration.
type RunConfig struct {
	Ncol int // columns; 0 = 16
	// Member seeds the initial-condition perturbation (ensemble member
	// id or experimental run id).
	Member int
	// PertScale is the absolute temperature perturbation magnitude.
	// 0 selects the default 1e-9 (CESM uses O(1e-14) relative, which
	// at T≈280 is the same order of magnitude).
	PertScale float64
	// RNG picks the random_number generator (RAND-MT swaps this).
	RNG RNGKind
	// RNGSeed seeds the model PRNG; it is deliberately identical for
	// every member (CESM's PRNG streams are reproducible), so PRNG
	// values are not a source of ensemble spread.
	RNGSeed uint64
	// FMA enables fused multiply-add per module (nil = all disabled).
	FMA func(module string) bool
	// Trace receives subprogram entries (coverage runs).
	Trace func(module, subprogram string)
	// KernelWatch is the module::subprogram to snapshot (KGen runs).
	KernelWatch string
	// SnapshotAll captures every variable's final values keyed by
	// metagraph node key — the runtime-sampling instrumentation.
	SnapshotAll bool
	// StopAfter limits the number of steps (0 = full 9 steps); the
	// coverage filter runs only 2 steps, per §2.1.
	StopAfter int
}

// Result is one completed integration.
type Result struct {
	// Means maps output label to global mean at the final step.
	Means ect.RunOutput
	// Machine is the finished interpreter (exposes Outputs/Kernel).
	Machine *interp.Machine
}

// Runner caches the parsed corpus for repeated integrations.
type Runner struct {
	Corpus  *corpus.Corpus
	Modules []*fortran.Module
}

// NewRunner parses the corpus once.
func NewRunner(c *corpus.Corpus) (*Runner, error) {
	mods, err := c.Parse()
	if err != nil {
		return nil, err
	}
	return &Runner{Corpus: c, Modules: mods}, nil
}

// Run integrates the model per cfg and returns the step-9 output
// means.
func (r *Runner) Run(cfg RunConfig) (*Result, error) {
	if cfg.Ncol == 0 {
		cfg.Ncol = 16
	}
	if cfg.PertScale == 0 {
		cfg.PertScale = 1e-9
	}
	if cfg.RNGSeed == 0 {
		cfg.RNGSeed = 777
	}
	var src rng.Source
	switch cfg.RNG {
	case RNGMersenne:
		src = rng.NewMT19937(cfg.RNGSeed)
	default:
		src = rng.NewKISS(cfg.RNGSeed)
	}
	m, err := interp.NewMachine(r.Modules, interp.Config{
		Ncol:        cfg.Ncol,
		RNG:         src,
		FMA:         cfg.FMA,
		Trace:       cfg.Trace,
		KernelWatch: cfg.KernelWatch,
		SnapshotAll: cfg.SnapshotAll,
	})
	if err != nil {
		return nil, err
	}
	if err := m.Call(r.Corpus.DriverModule, r.Corpus.InitSub); err != nil {
		return nil, fmt.Errorf("model: init: %w", err)
	}
	if err := perturb(m, cfg); err != nil {
		return nil, err
	}
	steps := Steps
	if cfg.StopAfter > 0 && cfg.StopAfter < Steps {
		steps = cfg.StopAfter
	}
	for s := 0; s < steps; s++ {
		if err := m.Call(r.Corpus.DriverModule, r.Corpus.StepSub); err != nil {
			return nil, fmt.Errorf("model: step %d: %w", s+1, err)
		}
	}
	if cfg.SnapshotAll {
		m.SnapshotModuleVars()
	}
	return &Result{Means: m.OutputMeans(), Machine: m}, nil
}

// perturb applies the member-specific initial-condition perturbation:
// a random temperature field perturbation (CESM pertlim-style) plus a
// small perturbation of the near-isolated wpert aerosol field so every
// output has nonzero ensemble variance.
func perturb(m *interp.Machine, cfg RunConfig) error {
	gen := rng.NewLCG(uint64(cfg.Member)*2654435761 + 97)
	st, ok := m.ModuleVar("physics_types", "state")
	if !ok {
		return fmt.Errorf("model: state variable missing")
	}
	t := st.D["t"]
	for i := range t.A {
		t.A[i] += cfg.PertScale * gauss(gen)
	}
	if wp, ok := m.ModuleVar("microp_aero", "wpert"); ok {
		for i := range wp.A {
			wp.A[i] += 1e-3 * gauss(gen)
		}
	}
	return nil
}

// gauss draws a standard normal via Box-Muller.
func gauss(g *rng.LCG) float64 {
	u1 := g.Float64()
	for u1 == 0 {
		u1 = g.Float64()
	}
	u2 := g.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Ensemble integrates members 0..n-1 with the base configuration.
func (r *Runner) Ensemble(n int, base RunConfig) ([]ect.RunOutput, error) {
	out := make([]ect.RunOutput, 0, n)
	for i := 0; i < n; i++ {
		cfg := base
		cfg.Member = i
		res, err := r.Run(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, res.Means)
	}
	return out, nil
}

// ExperimentalSet integrates members offset..offset+n-1 (disjoint from
// the ensemble's perturbation seeds).
func (r *Runner) ExperimentalSet(n, offset int, base RunConfig) ([]ect.RunOutput, error) {
	out := make([]ect.RunOutput, 0, n)
	for i := 0; i < n; i++ {
		cfg := base
		cfg.Member = offset + i
		res, err := r.Run(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, res.Means)
	}
	return out, nil
}
