package model

import (
	"testing"

	"github.com/climate-rca/rca/internal/corpus"
)

// BenchmarkRunBytecode / BenchmarkRunTree time one full 9-step
// integration per engine on the bench-sized corpus — the per-member
// cost every ensemble pays.
func benchRunner(b *testing.B, kind EngineKind) {
	b.Helper()
	r, err := NewRunnerEngine(corpus.Generate(corpus.Config{AuxModules: 40, Seed: 2}), kind)
	if err != nil {
		b.Fatal(err)
	}
	if kind != EngineTree {
		r.Program() // compile outside the timed loop
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(RunConfig{Member: i}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunBytecode(b *testing.B) { benchRunner(b, EngineBytecode) }
func BenchmarkRunTree(b *testing.B)     { benchRunner(b, EngineTree) }

// BenchmarkBuildRunner times corpus parse + bytecode compile — the
// per-source-fingerprint build cost the Session amortizes.
func BenchmarkBuildRunner(b *testing.B) {
	c := corpus.Generate(corpus.Config{AuxModules: 40, Seed: 2})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := NewRunnerEngine(c, EngineBytecode)
		if err != nil {
			b.Fatal(err)
		}
		r.Program()
	}
}
