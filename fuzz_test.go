package rca

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestExperimentCatalogWireParity: every scenario the CLI can name
// must also resolve over the wire as {"experiment": NAME} with the
// same fingerprint — the wire catalog and the Go catalog are one list.
func TestExperimentCatalogWireParity(t *testing.T) {
	for _, sc := range AllExperiments() {
		got, err := ScenarioFromJSON([]byte(fmt.Sprintf(`{"experiment":%q}`, sc.Name())))
		if err != nil {
			t.Fatalf("%s: not resolvable over the wire: %v", sc.Name(), err)
		}
		fpWant, err := ScenarioFingerprint(fuzzCorpus, sc)
		if err != nil {
			t.Fatal(err)
		}
		fpGot, err := ScenarioFingerprint(fuzzCorpus, got)
		if err != nil {
			t.Fatal(err)
		}
		if fpGot != fpWant || got.Name() != sc.Name() {
			t.Fatalf("%s: wire catalog diverges from Go catalog", sc.Name())
		}
	}
}

// fuzzCorpus is a tiny corpus configuration: fingerprints are computed
// from the plan alone, so no model work happens in the fuzz loop.
var fuzzCorpus = CorpusConfig{AuxModules: 10, Seed: 5}

// FuzzScenarioJSON pins the wire format's round-trip contract: any
// scenario that parses and fingerprints must re-serialize, re-parse,
// and fingerprint identically — the property rcad's dedup keys and
// the `rca -server` client depend on. And nothing may panic.
func FuzzScenarioJSON(f *testing.F) {
	// Seed with every prewired catalog scenario…
	for _, sc := range AllExperiments() {
		data, err := ScenarioToJSON(sc)
		if err != nil {
			f.Fatalf("serialize catalog scenario %s: %v", sc.Name(), err)
		}
		f.Add(data)
	}
	// …the shipped scenario files…
	seeds, err := filepath.Glob(filepath.Join("testdata", "scenario_*.json"))
	if err != nil {
		f.Fatal(err)
	}
	if len(seeds) == 0 {
		f.Fatal("no scenario seeds in testdata/")
	}
	for _, path := range seeds {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// …and hand-picked edge shapes.
	for _, s := range []string{
		`{"experiment":"avx2-full"}`,
		`{"experiment":"WSUBBUG","name":"renamed"}`,
		`{"name":"empty"}`,
		`{"name":"fma","inject":["fma=micro_mg,dyn3"]}`,
		`{"name":"occ","inject":["phys/aero_run.wsub#2*=1.5"]}`,
		`{"name":"meta","inject":["a.b:x=>y=>z"]}`,
		`{"name":"repl","inject":[{"kind":"replace","subprogram":"s","var":"v","old":"a","new":"b@c","site":"m::s::v"}]}`,
		`{"name":"nan","inject":["a.b*=NaN"]}`,
		`{"name":"neg","inject":[{"kind":"scale","subprogram":"s","var":"v","occurrence":-1,"factor":2}]}`,
	} {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := ScenarioFromJSON(data)
		if err != nil {
			return // malformed input is allowed to fail, not panic
		}
		fp, err := ScenarioFingerprint(fuzzCorpus, sc)
		if err != nil {
			return // e.g. conflicting injections — fine, typed error
		}
		// A scenario that parsed and fingerprinted must serialize…
		out, err := ScenarioToJSON(sc)
		if err != nil {
			t.Fatalf("round-trip serialize failed for %q: %v", data, err)
		}
		// …re-parse…
		sc2, err := ScenarioFromJSON(out)
		if err != nil {
			t.Fatalf("re-parse of serialized form %q failed: %v", out, err)
		}
		// …and agree on name, options and fingerprint.
		fp2, err := ScenarioFingerprint(fuzzCorpus, sc2)
		if err != nil {
			t.Fatalf("re-fingerprint of %q failed: %v", out, err)
		}
		if fp2 != fp {
			t.Fatalf("fingerprint unstable across round-trip:\nin:  %q\nout: %q\nfp1: %s\nfp2: %s", data, out, fp, fp2)
		}
		if sc2.Name() != sc.Name() || sc2.Options() != sc.Options() {
			t.Fatalf("name/options changed across round-trip: %q -> %q", data, out)
		}
	})
}
