package rca

// Determinism pins for the parallel graph-kernel engine: every kernel
// must produce BIT-IDENTICAL output at every parallelism level, because
// shard counts and merge order are fixed functions of the problem size
// (see DESIGN.md "Parallel graph-kernel engine"). These tests are the
// contract WithParallelism advertises; if one fails, a kernel's
// reduction tree has started depending on the worker count.

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"github.com/climate-rca/rca/internal/centrality"
	"github.com/climate-rca/rca/internal/community"
	"github.com/climate-rca/rca/internal/graph"
)

// symGraph builds a random symmetric graph: k loose clusters with
// bridges, the shape the refinement loop feeds Girvan-Newman.
func symGraph(n int, seed int64) *graph.Digraph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	g.AddNodes(n)
	for i := 0; i < 3*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
			g.AddEdge(v, u)
		}
	}
	return g
}

func TestParallelKernelsDeterministic(t *testing.T) {
	pars := []int{1, 2, 8}
	for _, seed := range []int64{1, 2, 3, 7, 42} {
		g := symGraph(40+int(seed%3)*20, seed)
		csr := graph.Freeze(g)

		// Edge betweenness: flat scores must match bitwise.
		ref := community.EdgeBetweennessFlat(csr, 1)
		for _, par := range pars {
			got := community.EdgeBetweennessFlat(csr, par)
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("seed %d: betweenness par=%d differs from sequential", seed, par)
			}
		}

		// Girvan-Newman: identical community structure.
		refComms := community.GirvanNewmanPar(g, 2, 0, 1)
		for _, par := range pars {
			got := community.GirvanNewmanPar(g, 2, 0, par)
			if !reflect.DeepEqual(refComms, got) {
				t.Fatalf("seed %d: girvan-newman par=%d differs: %v vs %v",
					seed, par, got, refComms)
			}
		}

		// Eigenvector centrality (both orientations): bitwise equal.
		for _, in := range []bool{false, true} {
			solve := func(par int) []float64 {
				o := centrality.Options{Parallelism: par}
				if in {
					return centrality.EigenvectorIn(g, o)
				}
				return centrality.Eigenvector(g, o)
			}
			refEV := solve(1)
			for _, par := range pars {
				if got := solve(par); !reflect.DeepEqual(refEV, got) {
					t.Fatalf("seed %d: eigenvector(in=%v) par=%d differs", seed, in, par)
				}
			}
		}
	}
}

// TestEigenLargeGraphParallelDeterministic exercises the matvec worker
// pool for real: eigen falls back to the calling goroutine below 1024
// nodes, so the small graphs above never enter the parallel branch.
// This pins bitwise determinism (and, under -race, data-race freedom)
// on a graph large enough to shard.
func TestEigenLargeGraphParallelDeterministic(t *testing.T) {
	g := symGraph(1500, 11)
	for _, in := range []bool{false, true} {
		solve := func(par int) []float64 {
			o := centrality.Options{Parallelism: par}
			if in {
				return centrality.EigenvectorIn(g, o)
			}
			return centrality.Eigenvector(g, o)
		}
		ref := solve(1)
		for _, par := range []int{2, 8} {
			if got := solve(par); !reflect.DeepEqual(ref, got) {
				t.Fatalf("eigenvector(in=%v) par=%d differs on 1500-node graph", in, par)
			}
		}
	}
}

// TestMapWrapperMatchesFlatKernel pins the compatibility wrapper: the
// map-shaped EdgeBetweenness must carry exactly the flat kernel's
// scores under canonical endpoints.
func TestMapWrapperMatchesFlatKernel(t *testing.T) {
	g := symGraph(30, 5)
	csr := graph.Freeze(g)
	flat := community.EdgeBetweennessFlat(csr, 4)
	m := community.EdgeBetweenness(g)
	if len(m) != len(flat) {
		t.Fatalf("wrapper has %d edges, flat has %d", len(m), len(flat))
	}
	for id, s := range flat {
		u, v := csr.UndirEndpoints(int32(id))
		if got := m[[2]int32{u, v}]; got != s {
			t.Fatalf("edge (%d,%d): map %v != flat %v", u, v, got, s)
		}
	}
}

// TestSessionRunAllParallelRace drives the whole pipeline with an
// 8-wide intra-investigation pool (ensemble fan-out plus parallel
// kernels) and compares against the sequential reference; under -race
// it doubles as the data-race check for the worker pools.
func TestSessionRunAllParallelRace(t *testing.T) {
	cfg := CorpusConfig{AuxModules: 25, Seed: 2}
	scenarios := []Scenario{GOFFGRATCH, WSUBBUG}
	ctx := context.Background()

	par := NewSession(cfg, WithEnsembleSize(12), WithExpSize(4), WithParallelism(8))
	parOuts, err := par.RunAll(ctx, scenarios)
	if err != nil {
		t.Fatalf("parallel RunAll: %v", err)
	}
	seq := NewSession(cfg, WithEnsembleSize(12), WithExpSize(4), WithParallelism(1))
	seqOuts, err := seq.RunAll(ctx, scenarios)
	if err != nil {
		t.Fatalf("sequential RunAll: %v", err)
	}
	for i := range scenarios {
		if !reflect.DeepEqual(summarize(parOuts[i]), summarize(seqOuts[i])) {
			t.Fatalf("%s: parallel outcome differs from sequential:\n%+v\nvs\n%+v",
				scenarios[i].Name(), summarize(parOuts[i]), summarize(seqOuts[i]))
		}
	}
}
