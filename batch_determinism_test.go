package rca

import (
	"context"
	"testing"
)

// TestBatchedCatalogBytesIdentical pins the batched execution mode's
// determinism contract at the outermost boundary: running catalog
// scenarios with members batched onto lockstep struct-of-arrays VMs
// (the default WithBatch width) must produce byte-identical
// FormatOutcome reports at every parallelism level — and identical to
// the solo-VM reference (WithBatch(1)). Under -race this doubles as
// the data-race check for the batched worker pools.
func TestBatchedCatalogBytesIdentical(t *testing.T) {
	cfg := CorpusConfig{AuxModules: 25, Seed: 2}
	scenarios := []Scenario{GOFFGRATCH, WSUBBUG}
	ctx := context.Background()

	run := func(opts ...Option) []string {
		t.Helper()
		base := []Option{WithEnsembleSize(12), WithExpSize(4)}
		s := NewSession(cfg, append(base, opts...)...)
		outs, err := s.RunAll(ctx, scenarios)
		if err != nil {
			t.Fatal(err)
		}
		texts := make([]string, len(outs))
		for i, o := range outs {
			texts[i] = FormatOutcome(o)
		}
		return texts
	}

	// Solo-VM sequential reference: every member on its own VM.
	ref := run(WithBatch(1), WithParallelism(1))
	for _, par := range []int{1, 2, 8} {
		got := run(WithParallelism(par)) // default batching on
		for i := range scenarios {
			if got[i] != ref[i] {
				t.Fatalf("%s: batched output at parallelism %d differs from solo reference\n--- batched ---\n%s--- solo ---\n%s",
					scenarios[i].Name(), par, got[i], ref[i])
			}
		}
	}
	// An odd batch width that doesn't divide the set sizes must agree too.
	got := run(WithBatch(5), WithParallelism(3))
	for i := range scenarios {
		if got[i] != ref[i] {
			t.Fatalf("%s: batch width 5 output differs from solo reference", scenarios[i].Name())
		}
	}
}
